//! The codec seam: pluggable wire formats for names and stamps.
//!
//! [`encode`](crate::encode) hard-codes the paper's bit-level trie format
//! against concrete representations. This module extracts the format choice
//! into a trait, [`StampCodec`], generic over the name representation
//! ([`NameLike`]), with two shipped implementations:
//!
//! * [`BitTrieCodec`] — the paper's bit-packed trie format (`Empty ↦ 0`,
//!   `Elem ↦ 10`, `Node ↦ 11`), byte-for-byte identical to the historical
//!   [`encode`](crate::encode) functions. This is the space-optimal format
//!   the E7/E9 experiments measure; it is **not** byte-aligned, so a stamp
//!   cannot be sliced into its components without bit arithmetic.
//! * [`VarintCodec`] — a byte-aligned frame format: an LEB128 varint tag
//!   count followed by the preorder trie tags packed four-per-byte. The
//!   payload layout is exactly the in-memory tag array of
//!   [`PackedName`](crate::PackedName), so decoding into the workspace's
//!   default representation is a validated memcpy — no bit reader, no
//!   `NameTree` round-trip. This is the format replication traffic uses
//!   (see [`write_frame`]/[`read_frame`] for message framing and the
//!   `vstamp-store` anti-entropy protocol built on them).
//!
//! Both codecs work on the representation-independent preorder tag stream
//! exposed by [`NameLike::visit_tags`] / [`NameLike::from_packed_tags`], so
//! every (codec × representation) cell round-trips — property-tested in
//! `tests/codec_properties.rs`, together with a malformed/truncated-frame
//! corpus asserting every decode error path returns [`DecodeError`].
//!
//! # Examples
//!
//! ```
//! use vstamp_core::codec::{BitTrieCodec, StampCodec, VarintCodec};
//! use vstamp_core::VersionStamp;
//!
//! let (a, b) = VersionStamp::seed().fork();
//! let stamp = a.update().join_non_reducing(&b);
//!
//! let bits = BitTrieCodec.encode_stamp(&stamp);
//! assert_eq!(BitTrieCodec.decode_stamp(&bits)?, stamp);
//!
//! let frames = VarintCodec.encode_stamp(&stamp);
//! assert_eq!(VarintCodec.decode_stamp(&frames)?, stamp);
//! # Ok::<(), vstamp_core::DecodeError>(())
//! ```

use crate::bitstring::Bit;
use crate::encode::{BitReader, BitWriter};
use crate::error::DecodeError;
use crate::name_like::NameLike;
use crate::stamp::Stamp;

/// A wire format for names and stamps, generic over the name
/// representation.
///
/// Implementations are stateless value codecs: a name (or stamp) in, bytes
/// out, and the exact inverse on decode — truncated, malformed or trailing
/// input is rejected with a [`DecodeError`], never a panic. The trait is
/// object safe, so transports can hold a `dyn StampCodec<N>` chosen at run
/// time.
pub trait StampCodec<N: NameLike> {
    /// Short identifier of the codec (`bit-trie`, `varint-frame`), used in
    /// reports and protocol negotiation.
    fn codec_name(&self) -> &'static str;

    /// Appends the encoding of a name to `out`.
    fn encode_name_into(&self, name: &N, out: &mut Vec<u8>);

    /// Decodes a name occupying the whole of `bytes`.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] on truncated, malformed or trailing input.
    fn decode_name(&self, bytes: &[u8]) -> Result<N, DecodeError>;

    /// Appends the encoding of a stamp (update then id) to `out`.
    fn encode_stamp_into(&self, stamp: &Stamp<N>, out: &mut Vec<u8>);

    /// Decodes a stamp occupying the whole of `bytes`.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] on truncated, malformed or trailing input,
    /// or when the decoded pair violates stamp well-formedness (empty id or
    /// Invariant I1).
    fn decode_stamp(&self, bytes: &[u8]) -> Result<Stamp<N>, DecodeError>;

    /// Encodes a name into a fresh buffer.
    fn encode_name(&self, name: &N) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_name_into(name, &mut out);
        out
    }

    /// Encodes a stamp into a fresh buffer.
    fn encode_stamp(&self, stamp: &Stamp<N>) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_stamp_into(stamp, &mut out);
        out
    }
}

/// The paper's bit-packed trie format (see [`crate::encode`]): one bit per
/// `Empty`, two per `Elem`/`Node`, stamps as the concatenated update and id
/// streams, final byte zero-padded.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BitTrieCodec;

fn write_tags_as_bits<N: NameLike>(name: &N, writer: &mut BitWriter) {
    name.visit_tags(&mut |tag| match tag {
        0 => writer.push(Bit::Zero),
        1 => {
            writer.push(Bit::One);
            writer.push(Bit::Zero);
        }
        _ => {
            writer.push(Bit::One);
            writer.push(Bit::One);
        }
    });
}

/// Reads one trie's worth of tags from the bit stream into packed 2-bit
/// form, returning `(packed bytes, tag count)`.
fn read_tags_from_bits(reader: &mut BitReader<'_>) -> Result<(Vec<u8>, usize), DecodeError> {
    let mut packed: Vec<u8> = Vec::new();
    let mut count = 0usize;
    let mut pending = 1i64;
    while pending > 0 {
        let tag = match reader.read()? {
            Bit::Zero => 0u8,
            Bit::One => match reader.read()? {
                Bit::Zero => 1,
                Bit::One => 2,
            },
        };
        if count % 4 == 0 {
            packed.push(0);
        }
        let last = packed.len() - 1;
        packed[last] |= tag << ((count % 4) * 2);
        count += 1;
        pending += if tag == 2 { 1 } else { -1 };
    }
    Ok((packed, count))
}

impl<N: NameLike> StampCodec<N> for BitTrieCodec {
    fn codec_name(&self) -> &'static str {
        "bit-trie"
    }

    fn encode_name_into(&self, name: &N, out: &mut Vec<u8>) {
        let mut writer = BitWriter::new();
        write_tags_as_bits(name, &mut writer);
        out.extend_from_slice(&writer.into_bytes());
    }

    fn decode_name(&self, bytes: &[u8]) -> Result<N, DecodeError> {
        let mut reader = BitReader::new(bytes);
        let (packed, count) = read_tags_from_bits(&mut reader)?;
        reader.finish()?;
        N::from_packed_tags(&packed, count)
    }

    fn encode_stamp_into(&self, stamp: &Stamp<N>, out: &mut Vec<u8>) {
        let mut writer = BitWriter::new();
        write_tags_as_bits(stamp.update_name(), &mut writer);
        write_tags_as_bits(stamp.id_name(), &mut writer);
        out.extend_from_slice(&writer.into_bytes());
    }

    fn decode_stamp(&self, bytes: &[u8]) -> Result<Stamp<N>, DecodeError> {
        let mut reader = BitReader::new(bytes);
        let (update_tags, update_count) = read_tags_from_bits(&mut reader)?;
        let (id_tags, id_count) = read_tags_from_bits(&mut reader)?;
        reader.finish()?;
        let update = N::from_packed_tags(&update_tags, update_count)?;
        let id = N::from_packed_tags(&id_tags, id_count)?;
        Stamp::from_parts(update, id)
            .map_err(|_| DecodeError::Malformed("decoded pair is not a valid stamp"))
    }
}

/// The byte-aligned frame format: an LEB128 varint tag count followed by
/// `⌈count / 4⌉` bytes of preorder trie tags, four 2-bit tags per byte
/// (little-endian within the byte, zero-padded tail).
///
/// The payload layout is the in-memory tag array of
/// [`PackedName`](crate::PackedName): decoding into the default
/// representation validates the structure and memcpys the bytes — no bit
/// reader, no tree reconstruction. Stamps are the update frame followed by
/// the id frame; both boundaries are byte boundaries, so components can be
/// sliced without decoding.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VarintCodec;

impl VarintCodec {
    fn decode_name_frame<N: NameLike>(input: &mut &[u8]) -> Result<N, DecodeError> {
        let count = read_varint(input)?;
        if count > u64::from(u32::MAX) {
            return Err(DecodeError::Malformed("tag count exceeds the representable maximum"));
        }
        let count = count as usize;
        let byte_len = count.div_ceil(4);
        if input.len() < byte_len {
            return Err(DecodeError::UnexpectedEnd);
        }
        let (payload, rest) = input.split_at(byte_len);
        *input = rest;
        N::from_packed_tags(payload, count)
    }
}

impl<N: NameLike> StampCodec<N> for VarintCodec {
    fn codec_name(&self) -> &'static str {
        "varint-frame"
    }

    fn encode_name_into(&self, name: &N, out: &mut Vec<u8>) {
        write_varint(out, name.tag_count() as u64);
        name.write_packed_tags(out);
    }

    fn decode_name(&self, bytes: &[u8]) -> Result<N, DecodeError> {
        let mut input = bytes;
        let name = Self::decode_name_frame(&mut input)?;
        if !input.is_empty() {
            return Err(DecodeError::TrailingData);
        }
        Ok(name)
    }

    fn encode_stamp_into(&self, stamp: &Stamp<N>, out: &mut Vec<u8>) {
        self.encode_name_into(stamp.update_name(), out);
        self.encode_name_into(stamp.id_name(), out);
    }

    fn decode_stamp(&self, bytes: &[u8]) -> Result<Stamp<N>, DecodeError> {
        let mut input = bytes;
        let update = Self::decode_name_frame::<N>(&mut input)?;
        let id = Self::decode_name_frame::<N>(&mut input)?;
        if !input.is_empty() {
            return Err(DecodeError::TrailingData);
        }
        Stamp::from_parts(update, id)
            .map_err(|_| DecodeError::Malformed("decoded pair is not a valid stamp"))
    }
}

/// Appends an LEB128 varint to `out` (7 value bits per byte, continuation
/// bit high).
pub fn write_varint(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7F) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads an LEB128 varint from the front of `input`, advancing it past the
/// consumed bytes.
///
/// # Errors
///
/// Returns [`DecodeError::UnexpectedEnd`] when the input ends inside the
/// varint and [`DecodeError::Malformed`] when the encoding overflows 64
/// bits or is non-canonical (a redundant trailing `0x80 … 0x00`).
pub fn read_varint(input: &mut &[u8]) -> Result<u64, DecodeError> {
    let mut value = 0u64;
    let mut shift = 0u32;
    for (index, &byte) in input.iter().enumerate() {
        if shift >= 64 || (shift == 63 && byte & 0x7E != 0) {
            return Err(DecodeError::Malformed("varint overflows 64 bits"));
        }
        if byte == 0 && shift != 0 {
            return Err(DecodeError::Malformed("non-canonical varint"));
        }
        value |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            *input = &input[index + 1..];
            return Ok(value);
        }
        shift += 7;
    }
    Err(DecodeError::UnexpectedEnd)
}

/// Appends a length-prefixed frame (varint byte length, then the payload)
/// to `out` — the unit replication traffic is chunked into: a message is a
/// sequence of frames, each independently decodable.
pub fn write_frame(out: &mut Vec<u8>, payload: &[u8]) {
    write_varint(out, payload.len() as u64);
    out.extend_from_slice(payload);
}

/// Reads one length-prefixed frame from the front of `input`, advancing it
/// past the frame.
///
/// # Errors
///
/// Returns [`DecodeError::UnexpectedEnd`] when the prefix or the payload is
/// truncated and [`DecodeError::Malformed`] when the length does not fit in
/// memory.
pub fn read_frame<'a>(input: &mut &'a [u8]) -> Result<&'a [u8], DecodeError> {
    let len = read_varint(input)?;
    let len = usize::try_from(len).map_err(|_| DecodeError::Malformed("frame length overflow"))?;
    if input.len() < len {
        return Err(DecodeError::UnexpectedEnd);
    }
    let (payload, rest) = input.split_at(len);
    *input = rest;
    Ok(payload)
}

/// Frame-kind byte for a clock shipped as its full canonical encoding.
pub const CLOCK_FRAME_FULL: u8 = 0;
/// Frame-kind byte for a clock shipped as a delta: the version's dot plus
/// the fingerprint of the context the sender assumes the receiver shares.
pub const CLOCK_FRAME_DELTA: u8 = 1;

/// A clock on the wire: either the full canonical clock encoding, or a
/// **delta** — just the minting dot plus an O(1) fingerprint of the context
/// the sender assumes the receiver already holds. The receiver reconstructs
/// `clock = context ⊔ dot` when the fingerprint matches, and falls back to
/// requesting the full frame when it does not; correctness never depends on
/// the fingerprint, only the fast path does.
///
/// Layout: one kind byte ([`CLOCK_FRAME_FULL`] or [`CLOCK_FRAME_DELTA`]),
/// then a length-prefixed frame holding the clock (full) or dot (delta)
/// encoding, then — delta only — the fingerprint as 8 little-endian bytes.
/// Both arms borrow: encoding copies from the version's cached canonical
/// bytes, decoding hands back subslices of the input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaFrame<'a> {
    /// The clock's full canonical encoding.
    Full {
        /// Encoded clock bytes (codec-canonical).
        clock: &'a [u8],
    },
    /// The minting dot plus the assumed-context fingerprint.
    Delta {
        /// Encoded dot bytes (codec-canonical).
        dot: &'a [u8],
        /// Fingerprint of the context the sender assumes is shared.
        ctx_fp: u64,
    },
}

impl DeltaFrame<'_> {
    /// Encoded size of this frame in bytes, including the kind byte and
    /// length prefix — what [`write_delta_frame`] will append.
    #[must_use]
    pub fn encoded_len(&self) -> usize {
        match self {
            DeltaFrame::Full { clock } => 1 + varint_len(clock.len() as u64) + clock.len(),
            DeltaFrame::Delta { dot, .. } => 1 + varint_len(dot.len() as u64) + dot.len() + 8,
        }
    }
}

/// Number of bytes [`write_varint`] emits for `value`.
#[must_use]
pub fn varint_len(value: u64) -> usize {
    let bits = (u64::BITS - value.leading_zeros()).max(1) as usize;
    bits.div_ceil(7)
}

/// Appends a [`DeltaFrame`] to `out`: kind byte, framed clock or dot bytes,
/// and (delta only) the 8-byte little-endian context fingerprint.
pub fn write_delta_frame(out: &mut Vec<u8>, frame: &DeltaFrame<'_>) {
    match frame {
        DeltaFrame::Full { clock } => {
            out.push(CLOCK_FRAME_FULL);
            write_frame(out, clock);
        }
        DeltaFrame::Delta { dot, ctx_fp } => {
            out.push(CLOCK_FRAME_DELTA);
            write_frame(out, dot);
            out.extend_from_slice(&ctx_fp.to_le_bytes());
        }
    }
}

/// Reads one [`DeltaFrame`] from the front of `input`, advancing it past
/// the frame. The returned clock/dot bytes borrow from `input` and are
/// **not** validated here — hand them to the codec's `decode_name` (or the
/// backend's clock decoder) for canonicality checking.
///
/// # Errors
///
/// Returns [`DecodeError::UnexpectedEnd`] on truncation and
/// [`DecodeError::Malformed`] on an unknown kind byte.
pub fn read_delta_frame<'a>(input: &mut &'a [u8]) -> Result<DeltaFrame<'a>, DecodeError> {
    let (&kind, rest) = input.split_first().ok_or(DecodeError::UnexpectedEnd)?;
    *input = rest;
    match kind {
        CLOCK_FRAME_FULL => Ok(DeltaFrame::Full { clock: read_frame(input)? }),
        CLOCK_FRAME_DELTA => {
            let dot = read_frame(input)?;
            if input.len() < 8 {
                return Err(DecodeError::UnexpectedEnd);
            }
            let (fp_bytes, rest) = input.split_at(8);
            *input = rest;
            let ctx_fp = u64::from_le_bytes(fp_bytes.try_into().expect("split_at(8) yields 8"));
            Ok(DeltaFrame::Delta { dot, ctx_fp })
        }
        _ => Err(DecodeError::Malformed("unknown clock frame kind")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::name::Name;
    use crate::packed::PackedName;
    use crate::stamp::{SetStamp, TreeStamp, VersionStamp};
    use crate::tree::NameTree;

    const SAMPLES: &[&str] = &[
        "{}",
        "{ε}",
        "{0}",
        "{1}",
        "{0, 1}",
        "{01, 1}",
        "{00, 011}",
        "{000, 011, 1}",
        "{00, 01, 10, 11}",
        "{0110, 0111, 010, 00, 1}",
    ];

    fn roundtrip_names<N: NameLike, C: StampCodec<N>>(codec: &C) {
        for lit in SAMPLES {
            let name = N::from_name(&lit.parse::<Name>().unwrap());
            let bytes = codec.encode_name(&name);
            let decoded = codec.decode_name(&bytes).unwrap();
            assert_eq!(decoded, name, "{} roundtrip failed for {lit}", codec.codec_name());
        }
    }

    #[test]
    fn both_codecs_roundtrip_every_representation() {
        roundtrip_names::<Name, _>(&BitTrieCodec);
        roundtrip_names::<NameTree, _>(&BitTrieCodec);
        roundtrip_names::<PackedName, _>(&BitTrieCodec);
        roundtrip_names::<Name, _>(&VarintCodec);
        roundtrip_names::<NameTree, _>(&VarintCodec);
        roundtrip_names::<PackedName, _>(&VarintCodec);
    }

    #[test]
    fn bit_trie_codec_matches_the_historical_encoding() {
        for lit in SAMPLES {
            let name: Name = lit.parse().unwrap();
            let packed = PackedName::from_name(&name);
            let tree = NameTree::from_name(&name);
            let expected = crate::encode::encode_tree(&tree);
            assert_eq!(StampCodec::<PackedName>::encode_name(&BitTrieCodec, &packed), expected);
            assert_eq!(StampCodec::<NameTree>::encode_name(&BitTrieCodec, &tree), expected);
            assert_eq!(StampCodec::<Name>::encode_name(&BitTrieCodec, &name), expected);
        }
        let (a, b) = VersionStamp::seed().fork();
        let stamp = a.update().join_non_reducing(&b);
        assert_eq!(BitTrieCodec.encode_stamp(&stamp), crate::encode::encode_stamp(&stamp));
    }

    #[test]
    fn stamps_roundtrip_through_both_codecs() {
        let seed = VersionStamp::seed();
        let (a, b) = seed.fork();
        let a1 = a.update();
        let joined = a1.join_non_reducing(&b);
        for stamp in [seed, a, b, a1, joined] {
            let bits = BitTrieCodec.encode_stamp(&stamp);
            assert_eq!(BitTrieCodec.decode_stamp(&bits).unwrap(), stamp);
            let frames = VarintCodec.encode_stamp(&stamp);
            assert_eq!(VarintCodec.decode_stamp(&frames).unwrap(), stamp);
            let tree: TreeStamp = stamp.clone().into();
            assert_eq!(VarintCodec.decode_stamp(&VarintCodec.encode_stamp(&tree)).unwrap(), tree);
            let set: SetStamp = stamp.clone().into();
            assert_eq!(BitTrieCodec.decode_stamp(&BitTrieCodec.encode_stamp(&set)).unwrap(), set);
        }
    }

    #[test]
    fn varint_roundtrip_and_rejections() {
        let mut buf = Vec::new();
        for v in [0u64, 1, 127, 128, 300, 16_383, 16_384, u32::MAX as u64, u64::MAX] {
            buf.clear();
            write_varint(&mut buf, v);
            let mut input = buf.as_slice();
            assert_eq!(read_varint(&mut input).unwrap(), v);
            assert!(input.is_empty());
        }
        // Truncated.
        let mut input: &[u8] = &[0x80];
        assert_eq!(read_varint(&mut input), Err(DecodeError::UnexpectedEnd));
        // Overflow: 11 continuation bytes.
        let mut long = vec![0xFF; 10];
        long.push(0x01);
        let mut input = long.as_slice();
        assert!(matches!(read_varint(&mut input), Err(DecodeError::Malformed(_))));
        // Non-canonical: redundant zero continuation.
        let mut input: &[u8] = &[0x80, 0x00];
        assert!(matches!(read_varint(&mut input), Err(DecodeError::Malformed(_))));
    }

    #[test]
    fn frames_roundtrip_and_reject_truncation() {
        let mut out = Vec::new();
        write_frame(&mut out, b"digest");
        write_frame(&mut out, b"");
        write_frame(&mut out, &[0xAB; 200]);
        let mut input = out.as_slice();
        assert_eq!(read_frame(&mut input).unwrap(), b"digest");
        assert_eq!(read_frame(&mut input).unwrap(), b"");
        assert_eq!(read_frame(&mut input).unwrap(), &[0xAB; 200]);
        assert!(input.is_empty());
        assert_eq!(read_frame(&mut input), Err(DecodeError::UnexpectedEnd));
        let mut truncated = &out[..out.len() - 1];
        let _ = read_frame(&mut truncated).unwrap();
        let _ = read_frame(&mut truncated).unwrap();
        assert_eq!(read_frame(&mut truncated), Err(DecodeError::UnexpectedEnd));
    }

    #[test]
    fn varint_codec_decodes_reject_bad_frames() {
        let name = PackedName::from_name(&"{0, 1}".parse::<Name>().unwrap());
        let bytes = StampCodec::<PackedName>::encode_name(&VarintCodec, &name);
        // Truncated payload.
        assert_eq!(
            StampCodec::<PackedName>::decode_name(&VarintCodec, &bytes[..bytes.len() - 1]),
            Err(DecodeError::UnexpectedEnd)
        );
        // Trailing byte.
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert_eq!(
            StampCodec::<PackedName>::decode_name(&VarintCodec, &trailing),
            Err(DecodeError::TrailingData)
        );
        // Reserved tag value 0b11.
        let mut bad = bytes.clone();
        let last = bad.len() - 1;
        bad[last] = 0xFF;
        assert!(matches!(
            StampCodec::<PackedName>::decode_name(&VarintCodec, &bad),
            Err(DecodeError::Malformed(_) | DecodeError::TrailingData)
        ));
        // Absurd tag count.
        let mut absurd = Vec::new();
        write_varint(&mut absurd, u64::MAX);
        assert!(StampCodec::<PackedName>::decode_name(&VarintCodec, &absurd).is_err());
        // Empty input.
        assert_eq!(
            StampCodec::<PackedName>::decode_name(&VarintCodec, &[]),
            Err(DecodeError::UnexpectedEnd)
        );
    }

    #[test]
    fn decoded_stamps_are_validated() {
        // update ⋣ id: {0, 1} over {0}.
        let update = PackedName::from_name(&"{0, 1}".parse::<Name>().unwrap());
        let id = PackedName::from_name(&"{0}".parse::<Name>().unwrap());
        let mut bytes = Vec::new();
        StampCodec::<PackedName>::encode_name_into(&VarintCodec, &update, &mut bytes);
        StampCodec::<PackedName>::encode_name_into(&VarintCodec, &id, &mut bytes);
        assert!(matches!(
            StampCodec::<PackedName>::decode_stamp(&VarintCodec, &bytes),
            Err(DecodeError::Malformed(_))
        ));
    }

    #[test]
    fn codec_objects_are_dynamically_dispatchable() {
        let codecs: Vec<Box<dyn StampCodec<PackedName>>> =
            vec![Box::new(BitTrieCodec), Box::new(VarintCodec)];
        let stamp = VersionStamp::seed();
        for codec in &codecs {
            let bytes = codec.encode_stamp(&stamp);
            assert_eq!(codec.decode_stamp(&bytes).unwrap(), stamp);
            assert!(!codec.codec_name().is_empty());
        }
    }
}
