//! The three-way (plus equality) classification of frontier elements.
//!
//! Section 2 of the paper distinguishes, for two coexisting elements:
//! *equivalence* (same set of known updates), *obsolescence* (one element has
//! seen strictly more) and *mutual inconsistency* (each has seen an update
//! the other has not). [`Relation`] captures the classification, with
//! obsolescence split into the two directions.

use core::cmp::Ordering;
use core::fmt;

/// How two coexisting replicas relate under the frontier pre-order.
///
/// Produced by comparing causal histories (`⊆` on event sets), version-stamp
/// update components (`⊑` on names) or any of the baseline mechanisms.
///
/// # Examples
///
/// ```
/// use vstamp_core::{Relation, VersionStamp};
///
/// let seed = VersionStamp::seed();
/// let (a, b) = seed.fork();
/// let a1 = a.update();
///
/// assert_eq!(a1.relation(&b), Relation::Dominates);     // b is obsolete
/// assert_eq!(b.relation(&a1), Relation::Dominated);
/// let b1 = b.update();
/// assert_eq!(a1.relation(&b1), Relation::Concurrent);    // mutually inconsistent
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Relation {
    /// Both elements have seen exactly the same updates ("equivalent").
    Equal,
    /// The left element has seen every update the right one has, plus at
    /// least one more: the right element is obsolete relative to the left.
    Dominates,
    /// The left element is obsolete relative to the right one.
    Dominated,
    /// Each element has seen an update the other has not ("mutually
    /// inconsistent"); reconciliation requires a join.
    Concurrent,
}

impl Relation {
    /// Builds a relation from the two directions of a pre-order test
    /// (`left ≤ right`, `right ≤ left`).
    #[must_use]
    pub fn from_leq(left_le_right: bool, right_le_left: bool) -> Relation {
        match (left_le_right, right_le_left) {
            (true, true) => Relation::Equal,
            (true, false) => Relation::Dominated,
            (false, true) => Relation::Dominates,
            (false, false) => Relation::Concurrent,
        }
    }

    /// The relation seen from the other element's point of view.
    #[must_use]
    pub fn reverse(self) -> Relation {
        match self {
            Relation::Dominates => Relation::Dominated,
            Relation::Dominated => Relation::Dominates,
            other => other,
        }
    }

    /// Converts to a partial [`Ordering`] (`None` for concurrent elements),
    /// matching the `PartialOrd` convention used by the stamp types.
    #[must_use]
    pub fn to_ordering(self) -> Option<Ordering> {
        match self {
            Relation::Equal => Some(Ordering::Equal),
            Relation::Dominates => Some(Ordering::Greater),
            Relation::Dominated => Some(Ordering::Less),
            Relation::Concurrent => None,
        }
    }

    /// Builds a relation from a partial [`Ordering`].
    #[must_use]
    pub fn from_ordering(ordering: Option<Ordering>) -> Relation {
        match ordering {
            Some(Ordering::Equal) => Relation::Equal,
            Some(Ordering::Greater) => Relation::Dominates,
            Some(Ordering::Less) => Relation::Dominated,
            None => Relation::Concurrent,
        }
    }

    /// `true` when the elements have seen the same updates.
    #[must_use]
    pub fn is_equal(self) -> bool {
        matches!(self, Relation::Equal)
    }

    /// `true` when the left element dominates (right is obsolete).
    #[must_use]
    pub fn is_dominates(self) -> bool {
        matches!(self, Relation::Dominates)
    }

    /// `true` when the left element is obsolete.
    #[must_use]
    pub fn is_dominated(self) -> bool {
        matches!(self, Relation::Dominated)
    }

    /// `true` when the elements are mutually inconsistent.
    #[must_use]
    pub fn is_concurrent(self) -> bool {
        matches!(self, Relation::Concurrent)
    }

    /// `true` when the left element has seen at least the updates of the
    /// right one (i.e. `Equal` or `Dominates`).
    #[must_use]
    pub fn includes_right(self) -> bool {
        matches!(self, Relation::Equal | Relation::Dominates)
    }

    /// `true` when the right element has seen at least the updates of the
    /// left one (i.e. `Equal` or `Dominated`).
    #[must_use]
    pub fn includes_left(self) -> bool {
        matches!(self, Relation::Equal | Relation::Dominated)
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Relation::Equal => "equivalent",
            Relation::Dominates => "dominates",
            Relation::Dominated => "obsolete",
            Relation::Concurrent => "concurrent",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_leq_covers_all_cases() {
        assert_eq!(Relation::from_leq(true, true), Relation::Equal);
        assert_eq!(Relation::from_leq(true, false), Relation::Dominated);
        assert_eq!(Relation::from_leq(false, true), Relation::Dominates);
        assert_eq!(Relation::from_leq(false, false), Relation::Concurrent);
    }

    #[test]
    fn reverse_is_involutive() {
        for r in [Relation::Equal, Relation::Dominates, Relation::Dominated, Relation::Concurrent] {
            assert_eq!(r.reverse().reverse(), r);
        }
        assert_eq!(Relation::Dominates.reverse(), Relation::Dominated);
        assert_eq!(Relation::Equal.reverse(), Relation::Equal);
        assert_eq!(Relation::Concurrent.reverse(), Relation::Concurrent);
    }

    #[test]
    fn ordering_roundtrip() {
        for r in [Relation::Equal, Relation::Dominates, Relation::Dominated, Relation::Concurrent] {
            assert_eq!(Relation::from_ordering(r.to_ordering()), r);
        }
        assert_eq!(Relation::Dominates.to_ordering(), Some(Ordering::Greater));
        assert_eq!(Relation::Concurrent.to_ordering(), None);
    }

    #[test]
    fn predicates() {
        assert!(Relation::Equal.is_equal());
        assert!(Relation::Dominates.is_dominates());
        assert!(Relation::Dominated.is_dominated());
        assert!(Relation::Concurrent.is_concurrent());
        assert!(Relation::Equal.includes_right());
        assert!(Relation::Dominates.includes_right());
        assert!(!Relation::Dominated.includes_right());
        assert!(Relation::Dominated.includes_left());
        assert!(Relation::Equal.includes_left());
        assert!(!Relation::Concurrent.includes_left());
    }

    #[test]
    fn display_names_match_paper_vocabulary() {
        assert_eq!(Relation::Equal.to_string(), "equivalent");
        assert_eq!(Relation::Dominated.to_string(), "obsolete");
        assert_eq!(Relation::Concurrent.to_string(), "concurrent");
        assert_eq!(Relation::Dominates.to_string(), "dominates");
    }
}
