//! Abstraction over the three name representations.
//!
//! The paper defines names abstractly (Definition 4.1); this crate ships
//! three concrete representations — the literal antichain set [`Name`], the
//! boxed trie [`NameTree`] and the flat tag array [`PackedName`] — and the
//! stamp machinery is generic over them through [`NameLike`]. The `repr`
//! ablation bench compares the three.

use crate::bitstring::Bit;
use crate::error::DecodeError;
use crate::name::Name;
use crate::packed::PackedName;
use crate::relation::Relation;
use crate::tree::NameTree;

mod private {
    /// Seals [`super::NameLike`]: the stamp algebra is only meaningful for
    /// representations proven isomorphic to Definition 4.1, so downstream
    /// crates cannot add their own.
    pub trait Sealed {}
    impl Sealed for crate::name::Name {}
    impl Sealed for crate::tree::NameTree {}
    impl Sealed for crate::packed::PackedName {}
}

/// Operations a name representation must provide to back a
/// [`Stamp`](crate::Stamp).
///
/// This trait is sealed: it is implemented exactly for [`Name`],
/// [`NameTree`] and [`PackedName`], the three representations shipped by
/// this crate.
pub trait NameLike: Clone + Eq + core::fmt::Debug + core::fmt::Display + private::Sealed {
    /// Short identifier of the representation (`set`, `tree`, `packed`),
    /// used to label mechanisms and benchmark rows.
    const REPR_NAME: &'static str;

    /// The empty name `{}` (bottom of the semilattice).
    fn empty() -> Self;

    /// The name `{ε}` (identity of the initial element).
    fn epsilon() -> Self;

    /// The order `⊑` (down-set inclusion).
    fn leq(&self, other: &Self) -> bool;

    /// The semilattice join `⊔`.
    fn join(&self, other: &Self) -> Self;

    /// The lifted concatenation `n·x` used by fork.
    fn append(&self, bit: Bit) -> Self;

    /// Whether the name is `{}`.
    fn is_empty(&self) -> bool;

    /// Whether the name is exactly `{ε}`.
    fn is_epsilon(&self) -> bool;

    /// Number of strings in the antichain.
    fn string_count(&self) -> usize;

    /// Total bits across all strings (space metric of experiment E7).
    fn bit_size(&self) -> usize;

    /// Number of bits the shared wire encoding of this name occupies,
    /// computed on the representation itself (no boxed trie is built).
    fn encoded_bits(&self) -> usize;

    /// Length of the longest string.
    fn depth(&self) -> usize;

    /// Converts to the explicit antichain representation.
    fn to_name(&self) -> Name;

    /// Builds from the explicit antichain representation.
    fn from_name(name: &Name) -> Self;

    /// Applies the simplification rule of Section 6 to the `(update, id)`
    /// pair until it no longer applies, returning the normal form.
    fn reduce_pair(update: &Self, id: &Self) -> (Self, Self);

    /// Classifies two names under the pre-order induced by `⊑`.
    fn relation(&self, other: &Self) -> Relation {
        Relation::from_leq(self.leq(other), other.leq(self))
    }

    /// Number of nodes in the canonical binary-trie form of the name — the
    /// length of its preorder tag stream.
    fn tag_count(&self) -> usize;

    /// Visits the canonical preorder trie tags of the name (`0 = Empty`,
    /// `1 = Elem`, `2 = Node`) — the representation-independent substrate
    /// the wire codecs of [`crate::codec`] are built on.
    fn visit_tags(&self, visit: &mut dyn FnMut(u8));

    /// Appends the preorder trie tags packed four 2-bit tags per byte
    /// (little-endian within each byte, zero-padded) — the payload layout
    /// of the byte-aligned [`VarintCodec`](crate::codec::VarintCodec).
    fn write_packed_tags(&self, out: &mut Vec<u8>) {
        let mut count = 0usize;
        self.visit_tags(&mut |tag| {
            if count % 4 == 0 {
                out.push(0);
            }
            let last = out.len() - 1;
            out[last] |= tag << ((count % 4) * 2);
            count += 1;
        });
    }

    /// Builds a name from `tag_count` packed 2-bit preorder trie tags (the
    /// layout written by [`NameLike::write_packed_tags`]).
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] when the tags do not describe exactly one
    /// canonical trie: wrong byte length, reserved tag value, structural
    /// under/overrun, an interior node with two empty children, or set
    /// padding bits.
    fn from_packed_tags(bytes: &[u8], tag_count: usize) -> Result<Self, DecodeError>;
}

/// Checks that `len` packed 2-bit tags in `bytes` describe exactly one
/// canonical preorder trie (see [`NameLike::from_packed_tags`] for the
/// rejected shapes).
pub(crate) fn validate_packed_tags(bytes: &[u8], len: usize) -> Result<(), DecodeError> {
    if bytes.len() != len.div_ceil(4) {
        return Err(if bytes.len() < len.div_ceil(4) {
            DecodeError::UnexpectedEnd
        } else {
            DecodeError::TrailingData
        });
    }
    if len == 0 {
        return Err(DecodeError::Malformed("empty tag stream"));
    }
    if len % 4 != 0 && bytes[len / 4] >> ((len % 4) * 2) != 0 {
        return Err(DecodeError::TrailingData);
    }
    // One frame per open interior node: (children still missing, whether
    // every completed child so far was empty) — the same canonicality walk
    // as the bit-trie decoder.
    let mut frames: Vec<(u8, bool)> = Vec::new();
    let mut complete = false;
    for index in 0..len {
        if complete {
            return Err(DecodeError::TrailingData);
        }
        let tag = (bytes[index / 4] >> ((index % 4) * 2)) & 0b11;
        if tag == 3 {
            return Err(DecodeError::Malformed("reserved tag value"));
        }
        if tag == 2 {
            frames.push((2, true));
            continue;
        }
        let mut is_empty = tag == 0;
        loop {
            match frames.last_mut() {
                None => {
                    complete = true;
                    break;
                }
                Some(frame) => {
                    frame.0 -= 1;
                    frame.1 &= is_empty;
                    if frame.0 > 0 {
                        break;
                    }
                    if frame.1 {
                        return Err(DecodeError::Malformed(
                            "interior node with two empty children",
                        ));
                    }
                    frames.pop();
                    is_empty = false;
                }
            }
        }
    }
    if !complete {
        return Err(DecodeError::UnexpectedEnd);
    }
    Ok(())
}

impl NameLike for Name {
    const REPR_NAME: &'static str = "set";

    fn empty() -> Self {
        Name::empty()
    }

    fn epsilon() -> Self {
        Name::epsilon()
    }

    fn leq(&self, other: &Self) -> bool {
        Name::leq(self, other)
    }

    fn join(&self, other: &Self) -> Self {
        Name::join(self, other)
    }

    fn append(&self, bit: Bit) -> Self {
        Name::append(self, bit)
    }

    fn is_empty(&self) -> bool {
        Name::is_empty(self)
    }

    fn is_epsilon(&self) -> bool {
        Name::is_epsilon(self)
    }

    fn string_count(&self) -> usize {
        Name::len(self)
    }

    fn bit_size(&self) -> usize {
        Name::bit_size(self)
    }

    fn encoded_bits(&self) -> usize {
        crate::encode::encoded_name_bits(self)
    }

    fn depth(&self) -> usize {
        Name::depth(self)
    }

    fn to_name(&self) -> Name {
        self.clone()
    }

    fn from_name(name: &Name) -> Self {
        name.clone()
    }

    fn reduce_pair(update: &Self, id: &Self) -> (Self, Self) {
        crate::simplify::reduce_name_pair(update, id)
    }

    fn tag_count(&self) -> usize {
        let mut count = 0usize;
        self.visit_tags(&mut |_| count += 1);
        count
    }

    fn visit_tags(&self, visit: &mut dyn FnMut(u8)) {
        // Radix partition of the sorted antichain, exactly as in
        // `PackedName::from_name` — the sorted string order is the preorder
        // leaf order of the trie, so no trie is materialized.
        let strings: Vec<&crate::bitstring::BitString> = self.iter().collect();
        let mut frames: Vec<(usize, usize, usize)> = vec![(0, strings.len(), 0)];
        while let Some((start, end, depth)) = frames.pop() {
            if start == end {
                visit(0);
                continue;
            }
            if end - start == 1 && strings[start].len() == depth {
                visit(1);
                continue;
            }
            visit(2);
            let split = strings[start..end]
                .iter()
                .position(|s| s.get(depth) == Some(Bit::One))
                .map_or(end, |p| start + p);
            frames.push((split, end, depth + 1));
            frames.push((start, split, depth + 1));
        }
    }

    fn from_packed_tags(bytes: &[u8], tag_count: usize) -> Result<Self, DecodeError> {
        Ok(PackedName::from_packed_tags(bytes, tag_count)?.to_name())
    }
}

impl NameLike for NameTree {
    const REPR_NAME: &'static str = "tree";

    fn empty() -> Self {
        NameTree::empty()
    }

    fn epsilon() -> Self {
        NameTree::epsilon()
    }

    fn leq(&self, other: &Self) -> bool {
        NameTree::leq(self, other)
    }

    fn join(&self, other: &Self) -> Self {
        NameTree::join(self, other)
    }

    fn append(&self, bit: Bit) -> Self {
        NameTree::append(self, bit)
    }

    fn is_empty(&self) -> bool {
        NameTree::is_empty(self)
    }

    fn is_epsilon(&self) -> bool {
        NameTree::is_epsilon(self)
    }

    fn string_count(&self) -> usize {
        NameTree::string_count(self)
    }

    fn bit_size(&self) -> usize {
        NameTree::bit_size(self)
    }

    fn encoded_bits(&self) -> usize {
        crate::encode::encoded_tree_bits(self)
    }

    fn depth(&self) -> usize {
        NameTree::depth(self)
    }

    fn to_name(&self) -> Name {
        NameTree::to_name(self)
    }

    fn from_name(name: &Name) -> Self {
        NameTree::from_name(name)
    }

    fn reduce_pair(update: &Self, id: &Self) -> (Self, Self) {
        NameTree::reduce_pair(update, id)
    }

    fn tag_count(&self) -> usize {
        NameTree::node_count(self)
    }

    fn visit_tags(&self, visit: &mut dyn FnMut(u8)) {
        let mut stack: Vec<&NameTree> = vec![self];
        while let Some(tree) = stack.pop() {
            match tree {
                NameTree::Empty => visit(0),
                NameTree::Elem => visit(1),
                NameTree::Node(zero, one) => {
                    visit(2);
                    stack.push(one);
                    stack.push(zero);
                }
            }
        }
    }

    fn from_packed_tags(bytes: &[u8], tag_count: usize) -> Result<Self, DecodeError> {
        Ok(NameTree::from_name(&PackedName::from_packed_tags(bytes, tag_count)?.to_name()))
    }
}

impl NameLike for PackedName {
    const REPR_NAME: &'static str = "packed";

    fn empty() -> Self {
        PackedName::empty()
    }

    fn epsilon() -> Self {
        PackedName::epsilon()
    }

    fn leq(&self, other: &Self) -> bool {
        PackedName::leq(self, other)
    }

    fn join(&self, other: &Self) -> Self {
        PackedName::join(self, other)
    }

    fn append(&self, bit: Bit) -> Self {
        PackedName::append(self, bit)
    }

    fn is_empty(&self) -> bool {
        PackedName::is_empty(self)
    }

    fn is_epsilon(&self) -> bool {
        PackedName::is_epsilon(self)
    }

    fn string_count(&self) -> usize {
        PackedName::string_count(self)
    }

    fn bit_size(&self) -> usize {
        PackedName::bit_size(self)
    }

    fn encoded_bits(&self) -> usize {
        PackedName::encoded_bits(self)
    }

    fn depth(&self) -> usize {
        PackedName::depth(self)
    }

    fn to_name(&self) -> Name {
        PackedName::to_name(self)
    }

    fn from_name(name: &Name) -> Self {
        PackedName::from_name(name)
    }

    fn reduce_pair(update: &Self, id: &Self) -> (Self, Self) {
        PackedName::reduce_pair(update, id)
    }

    fn tag_count(&self) -> usize {
        PackedName::node_count(self)
    }

    fn visit_tags(&self, visit: &mut dyn FnMut(u8)) {
        for i in 0..self.node_count() {
            visit(self.tag(i));
        }
    }

    fn write_packed_tags(&self, out: &mut Vec<u8>) {
        // The in-memory tag array *is* the wire payload: one memcpy.
        out.extend_from_slice(self.tag_bytes());
    }

    fn from_packed_tags(bytes: &[u8], tag_count: usize) -> Result<Self, DecodeError> {
        validate_packed_tags(bytes, tag_count)?;
        Ok(PackedName::from_packed_tag_bytes(bytes, tag_count))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<Name> {
        ["{}", "{ε}", "{0}", "{1}", "{0, 1}", "{01, 1}", "{00, 011}", "{000, 011, 1}"]
            .iter()
            .map(|s| s.parse().unwrap())
            .collect()
    }

    /// Every `NameLike` operation must commute with the conversion between
    /// the two representations.
    fn check_agreement<A: NameLike, B: NameLike>() {
        let names = samples();
        assert_eq!(A::empty().to_name(), B::empty().to_name());
        assert_eq!(A::epsilon().to_name(), B::epsilon().to_name());
        for n in &names {
            let a = A::from_name(n);
            let b = B::from_name(n);
            assert_eq!(a.to_name(), b.to_name());
            assert_eq!(a.is_empty(), b.is_empty());
            assert_eq!(a.is_epsilon(), b.is_epsilon());
            assert_eq!(a.string_count(), b.string_count());
            assert_eq!(a.bit_size(), b.bit_size());
            assert_eq!(a.encoded_bits(), b.encoded_bits());
            assert_eq!(a.depth(), b.depth());
            for bit in [Bit::Zero, Bit::One] {
                assert_eq!(a.append(bit).to_name(), b.append(bit).to_name());
            }
            for m in &names {
                let am = A::from_name(m);
                let bm = B::from_name(m);
                assert_eq!(a.leq(&am), b.leq(&bm), "leq mismatch {n} vs {m}");
                assert_eq!(a.relation(&am), b.relation(&bm));
                assert_eq!(a.join(&am).to_name(), b.join(&bm).to_name());
                if am.leq(&a) {
                    let (ua, ia) = A::reduce_pair(&am, &a);
                    let (ub, ib) = B::reduce_pair(&bm, &b);
                    assert_eq!(ua.to_name(), ub.to_name(), "reduce update mismatch ({m}, {n})");
                    assert_eq!(ia.to_name(), ib.to_name(), "reduce id mismatch ({m}, {n})");
                }
            }
        }
    }

    #[test]
    fn set_and_tree_representations_agree() {
        check_agreement::<Name, NameTree>();
    }

    #[test]
    fn tree_and_packed_representations_agree() {
        check_agreement::<NameTree, PackedName>();
    }

    #[test]
    fn set_and_packed_representations_agree() {
        check_agreement::<Name, PackedName>();
    }

    #[test]
    fn trait_impl_delegates_for_name() {
        let n = <Name as NameLike>::epsilon();
        assert!(n.is_epsilon());
        assert_eq!(<Name as NameLike>::empty().string_count(), 0);
    }

    #[test]
    fn trait_impl_delegates_for_tree() {
        let n = <NameTree as NameLike>::epsilon();
        assert!(n.is_epsilon());
        assert_eq!(<NameTree as NameLike>::empty().bit_size(), 0);
    }

    #[test]
    fn trait_impl_delegates_for_packed() {
        let n = <PackedName as NameLike>::epsilon();
        assert!(n.is_epsilon());
        assert_eq!(<PackedName as NameLike>::empty().encoded_bits(), 1);
        assert_eq!(<PackedName as NameLike>::REPR_NAME, "packed");
    }
}
