//! The causal-history reference model of Section 2.
//!
//! Causal histories map every element of the current frontier to the set of
//! update events in its past. The model assumes a *global view*: every
//! update event receives a globally unique identity, something the paper
//! argues is not implementable under arbitrary partitions — which is exactly
//! why version stamps exist. The model is nevertheless indispensable: it is
//! the specification against which version stamps are proved (and, here,
//! property-tested) equivalent for frontier ordering (Proposition 5.1,
//! Corollary 5.2).
//!
//! # Examples
//!
//! ```
//! use vstamp_core::causal::{CausalHistory, CausalMechanism};
//! use vstamp_core::{Mechanism, Relation};
//!
//! let mut mech = CausalMechanism::new();
//! let root = mech.initial();
//! let (a, b) = mech.fork(&root);
//! let a = mech.update(&a);
//! assert_eq!(mech.relation(&a, &b), Relation::Dominates);
//! let joined = mech.join(&a, &b);
//! assert_eq!(mech.relation(&joined, &a), Relation::Equal);
//! ```

use core::fmt;
use std::collections::btree_set;
use std::collections::BTreeSet;

use crate::mechanism::Mechanism;
use crate::relation::Relation;

/// Globally unique identity of an update event.
///
/// The global uniqueness is provided by [`CausalMechanism`], which plays the
/// role of the paper's omniscient observer. The decentralized mechanism
/// (version stamps) never sees these values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct EventId(u64);

impl EventId {
    /// Wraps a raw event number.
    #[must_use]
    pub fn new(raw: u64) -> Self {
        EventId(raw)
    }

    /// The raw event number.
    #[must_use]
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// The set of update events known to one element — `C(a)` in the paper.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CausalHistory {
    events: BTreeSet<EventId>,
}

impl CausalHistory {
    /// The empty history of the initial element.
    #[must_use]
    pub fn new() -> Self {
        CausalHistory::default()
    }

    /// Builds a history from an iterator of events.
    pub fn from_events<I: IntoIterator<Item = EventId>>(events: I) -> Self {
        CausalHistory { events: events.into_iter().collect() }
    }

    /// Number of update events in the history.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` when no update has been observed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Returns `true` when the history contains the given event.
    #[must_use]
    pub fn contains(&self, event: EventId) -> bool {
        self.events.contains(&event)
    }

    /// Adds an event, returning `true` if it was new.
    pub fn insert(&mut self, event: EventId) -> bool {
        self.events.insert(event)
    }

    /// Returns a new history extended with `event` — the `update` transition
    /// of Definition 2.1.
    #[must_use]
    pub fn with_event(&self, event: EventId) -> Self {
        let mut out = self.clone();
        out.insert(event);
        out
    }

    /// Set union — the `join` transition of Definition 2.1.
    #[must_use]
    pub fn union(&self, other: &CausalHistory) -> Self {
        CausalHistory { events: self.events.union(&other.events).copied().collect() }
    }

    /// Set inclusion — the pre-order `≤_C` used for frontier comparison.
    #[must_use]
    pub fn is_subset_of(&self, other: &CausalHistory) -> bool {
        self.events.is_subset(&other.events)
    }

    /// Classifies two histories (equivalent / obsolete / concurrent).
    #[must_use]
    pub fn relation(&self, other: &CausalHistory) -> Relation {
        Relation::from_leq(self.is_subset_of(other), other.is_subset_of(self))
    }

    /// Iterates over the events of the history in increasing order.
    pub fn iter(&self) -> Iter<'_> {
        Iter { inner: self.events.iter() }
    }
}

impl fmt::Display for CausalHistory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("{")?;
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{e}")?;
        }
        f.write_str("}")
    }
}

impl FromIterator<EventId> for CausalHistory {
    fn from_iter<I: IntoIterator<Item = EventId>>(iter: I) -> Self {
        CausalHistory::from_events(iter)
    }
}

impl Extend<EventId> for CausalHistory {
    fn extend<I: IntoIterator<Item = EventId>>(&mut self, iter: I) {
        self.events.extend(iter);
    }
}

impl<'a> IntoIterator for &'a CausalHistory {
    type Item = EventId;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Iterator over the events of a [`CausalHistory`], produced by
/// [`CausalHistory::iter`].
#[derive(Debug, Clone)]
pub struct Iter<'a> {
    inner: btree_set::Iter<'a, EventId>,
}

impl Iterator for Iter<'_> {
    type Item = EventId;

    fn next(&mut self) -> Option<Self::Item> {
        self.inner.next().copied()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

impl ExactSizeIterator for Iter<'_> {}

/// The causal-history mechanism: the global-view oracle of Definition 2.1,
/// exposed through the common [`Mechanism`] interface so the same traces can
/// drive it and every decentralized mechanism side by side.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CausalMechanism {
    next_event: u64,
}

impl CausalMechanism {
    /// Creates a fresh oracle with no allocated events.
    #[must_use]
    pub fn new() -> Self {
        CausalMechanism::default()
    }

    /// Number of update events allocated so far.
    #[must_use]
    pub fn events_allocated(&self) -> u64 {
        self.next_event
    }

    fn fresh_event(&mut self) -> EventId {
        let id = EventId(self.next_event);
        self.next_event += 1;
        id
    }
}

impl Mechanism for CausalMechanism {
    type Element = CausalHistory;

    fn mechanism_name(&self) -> &'static str {
        "causal-histories"
    }

    fn initial(&mut self) -> Self::Element {
        CausalHistory::new()
    }

    fn update(&mut self, element: &Self::Element) -> Self::Element {
        let event = self.fresh_event();
        element.with_event(event)
    }

    fn fork(&mut self, element: &Self::Element) -> (Self::Element, Self::Element) {
        (element.clone(), element.clone())
    }

    fn join(&mut self, left: &Self::Element, right: &Self::Element) -> Self::Element {
        left.union(right)
    }

    fn relation(&self, left: &Self::Element, right: &Self::Element) -> Relation {
        left.relation(right)
    }

    fn size_bits(&self, element: &Self::Element) -> usize {
        // 64 bits per globally unique event identifier.
        element.len() * 64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_history() {
        let h = CausalHistory::new();
        assert!(h.is_empty());
        assert_eq!(h.len(), 0);
        assert_eq!(h.to_string(), "{}");
        assert_eq!(h, CausalHistory::default());
    }

    #[test]
    fn insert_and_contains() {
        let mut h = CausalHistory::new();
        assert!(h.insert(EventId::new(3)));
        assert!(!h.insert(EventId::new(3)));
        assert!(h.contains(EventId::new(3)));
        assert!(!h.contains(EventId::new(4)));
        assert_eq!(h.len(), 1);
        assert_eq!(h.to_string(), "{e3}");
    }

    #[test]
    fn with_event_is_persistent() {
        let h = CausalHistory::new();
        let h1 = h.with_event(EventId::new(1));
        assert!(h.is_empty());
        assert!(h1.contains(EventId::new(1)));
    }

    #[test]
    fn union_and_subset() {
        let a = CausalHistory::from_events([EventId::new(1), EventId::new(2)]);
        let b = CausalHistory::from_events([EventId::new(2), EventId::new(3)]);
        let u = a.union(&b);
        assert_eq!(u.len(), 3);
        assert!(a.is_subset_of(&u));
        assert!(b.is_subset_of(&u));
        assert!(!a.is_subset_of(&b));
        assert_eq!(a.relation(&b), Relation::Concurrent);
        assert_eq!(a.relation(&u), Relation::Dominated);
        assert_eq!(u.relation(&b), Relation::Dominates);
        assert_eq!(u.relation(&u.clone()), Relation::Equal);
    }

    #[test]
    fn iteration_is_ordered() {
        let h = CausalHistory::from_events([EventId::new(5), EventId::new(1), EventId::new(3)]);
        let events: Vec<u64> = h.iter().map(EventId::raw).collect();
        assert_eq!(events, vec![1, 3, 5]);
        assert_eq!(h.iter().len(), 3);
        let collected: CausalHistory = h.iter().collect();
        assert_eq!(collected, h);
        let mut extended = CausalHistory::new();
        extended.extend(&h);
        assert_eq!(extended, h);
    }

    #[test]
    fn mechanism_follows_definition_2_1() {
        let mut mech = CausalMechanism::new();
        assert_eq!(mech.mechanism_name(), "causal-histories");
        let root = mech.initial();
        assert!(root.is_empty());

        // update introduces a globally fresh event
        let updated = mech.update(&root);
        assert_eq!(updated.len(), 1);
        let updated_again = mech.update(&updated);
        assert_eq!(updated_again.len(), 2);
        assert_eq!(mech.events_allocated(), 2);

        // fork duplicates the history
        let (left, right) = mech.fork(&updated_again);
        assert_eq!(left, right);
        assert_eq!(left, updated_again);

        // join unions the histories
        let left_updated = mech.update(&left);
        let joined = mech.join(&left_updated, &right);
        assert_eq!(joined, left_updated);
        assert_eq!(mech.relation(&joined, &right), Relation::Dominates);
        assert_eq!(mech.relation(&right, &joined), Relation::Dominated);

        // size metric: 64 bits per event
        assert_eq!(mech.size_bits(&joined), 3 * 64);
        assert_eq!(mech.size_bits(&CausalHistory::new()), 0);
    }

    #[test]
    fn event_id_accessors() {
        let e = EventId::new(42);
        assert_eq!(e.raw(), 42);
        assert_eq!(e.to_string(), "e42");
    }

    #[cfg(feature = "serde")]
    #[test]
    fn serde_roundtrip() {
        let h = CausalHistory::from_events([EventId::new(1), EventId::new(9)]);
        let json = serde_json::to_string(&h).unwrap();
        let back: CausalHistory = serde_json::from_str(&json).unwrap();
        assert_eq!(back, h);
    }
}
