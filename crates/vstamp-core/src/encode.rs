//! Compact binary wire encoding of names and stamps.
//!
//! The paper motivates version stamps partly on space grounds ("an efficient
//! use of space is also highly desirable"). This module defines the wire
//! format used by the space experiments (E7/E9) and by applications that
//! ship stamps between replicas (the PANASYNC-style file tracker).
//!
//! The encoding works on the trie representation and spends:
//!
//! * 1 bit for `Empty` (`0`),
//! * 2 bits for `Elem` (`10`),
//! * 2 bits + children for `Node` (`11` then the encodings of the two
//!   subtrees).
//!
//! A stamp is the concatenation of its update and id encodings. The decoder
//! is the exact inverse and rejects malformed or truncated input.
//!
//! # Examples
//!
//! ```
//! use vstamp_core::{encode, VersionStamp};
//!
//! let (a, b) = VersionStamp::seed().fork();
//! let stamp = a.update().join_non_reducing(&b);
//! let bytes = encode::encode_stamp(&stamp);
//! let decoded = encode::decode_stamp(&bytes)?;
//! assert_eq!(decoded, stamp);
//! # Ok::<(), vstamp_core::DecodeError>(())
//! ```

use crate::bitstring::Bit;
use crate::error::DecodeError;
use crate::name::Name;
use crate::packed::PackedName;
use crate::stamp::{PackedStamp, TreeStamp, VersionStamp};
use crate::tree::NameTree;

/// Append-only bit buffer used by the encoder.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BitWriter {
    bytes: Vec<u8>,
    bit_len: usize,
}

impl BitWriter {
    /// Creates an empty writer.
    #[must_use]
    pub fn new() -> Self {
        BitWriter::default()
    }

    /// Number of bits written so far.
    #[must_use]
    pub fn bit_len(&self) -> usize {
        self.bit_len
    }

    /// Appends a single bit.
    pub fn push(&mut self, bit: Bit) {
        if self.bit_len % 8 == 0 {
            self.bytes.push(0);
        }
        if bit.is_one() {
            let idx = self.bit_len / 8;
            self.bytes[idx] |= 1 << (7 - (self.bit_len % 8));
        }
        self.bit_len += 1;
    }

    /// Finishes the stream, returning the packed bytes (the final byte is
    /// zero-padded).
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }
}

/// Bit-level reader used by the decoder.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    position: usize,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over packed bytes.
    #[must_use]
    pub fn new(bytes: &'a [u8]) -> Self {
        BitReader { bytes, position: 0 }
    }

    /// Number of bits consumed so far.
    #[must_use]
    pub fn position(&self) -> usize {
        self.position
    }

    /// Reads the next bit.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::UnexpectedEnd`] when the input is exhausted.
    pub fn read(&mut self) -> Result<Bit, DecodeError> {
        let byte_index = self.position / 8;
        if byte_index >= self.bytes.len() {
            return Err(DecodeError::UnexpectedEnd);
        }
        let bit = (self.bytes[byte_index] >> (7 - (self.position % 8))) & 1;
        self.position += 1;
        Ok(Bit::from(bit == 1))
    }

    /// Checks that only zero padding (less than one byte) remains.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::TrailingData`] if a whole unread byte remains
    /// or any remaining padding bit is set.
    pub fn finish(mut self) -> Result<(), DecodeError> {
        let consumed_bytes = self.position.div_ceil(8);
        if self.bytes.len() > consumed_bytes {
            return Err(DecodeError::TrailingData);
        }
        while self.position % 8 != 0 {
            if self.read()? == Bit::One {
                return Err(DecodeError::TrailingData);
            }
        }
        Ok(())
    }
}

fn write_tree(tree: &NameTree, writer: &mut BitWriter) {
    match tree {
        NameTree::Empty => writer.push(Bit::Zero),
        NameTree::Elem => {
            writer.push(Bit::One);
            writer.push(Bit::Zero);
        }
        NameTree::Node(zero, one) => {
            writer.push(Bit::One);
            writer.push(Bit::One);
            write_tree(zero, writer);
            write_tree(one, writer);
        }
    }
}

fn read_tree(reader: &mut BitReader<'_>) -> Result<NameTree, DecodeError> {
    match reader.read()? {
        Bit::Zero => Ok(NameTree::Empty),
        Bit::One => match reader.read()? {
            Bit::Zero => Ok(NameTree::Elem),
            Bit::One => {
                let zero = read_tree(reader)?;
                let one = read_tree(reader)?;
                if zero.is_empty() && one.is_empty() {
                    return Err(DecodeError::Malformed("interior node with two empty children"));
                }
                Ok(NameTree::Node(Box::new(zero), Box::new(one)))
            }
        },
    }
}

/// Number of bits the encoding of a tree occupies.
#[must_use]
pub fn encoded_tree_bits(tree: &NameTree) -> usize {
    match tree {
        NameTree::Empty => 1,
        NameTree::Elem => 2,
        NameTree::Node(zero, one) => 2 + encoded_tree_bits(zero) + encoded_tree_bits(one),
    }
}

/// Number of bits the encoding of a stamp occupies (update plus id).
#[must_use]
pub fn encoded_stamp_bits(stamp: &VersionStamp) -> usize {
    stamp.encoded_bits()
}

/// Number of bits the encoding of a tree-backed stamp occupies.
#[must_use]
pub fn encoded_tree_stamp_bits(stamp: &TreeStamp) -> usize {
    encoded_tree_bits(stamp.update_name()) + encoded_tree_bits(stamp.id_name())
}

/// Number of bits the encoding of a name occupies, computed directly from
/// the sorted antichain with a radix partition — no trie is materialized
/// (this backs `Mechanism::size_bits` for set-backed stamps, which samples
/// every frontier element of every step).
#[must_use]
pub fn encoded_name_bits(name: &Name) -> usize {
    let strings: Vec<&crate::bitstring::BitString> = name.iter().collect();
    let mut bits = 0usize;
    // (start, end, depth) ranges of `strings`, exactly as in
    // `PackedName::from_name`, but only counting node kinds.
    let mut frames: Vec<(usize, usize, usize)> = vec![(0, strings.len(), 0)];
    while let Some((start, end, depth)) = frames.pop() {
        if start == end {
            bits += 1; // Empty ↦ 0
            continue;
        }
        if end - start == 1 && strings[start].len() == depth {
            bits += 2; // Elem ↦ 10
            continue;
        }
        bits += 2; // Node ↦ 11, then both children
        let split = strings[start..end]
            .iter()
            .position(|s| s.get(depth) == Some(Bit::One))
            .map_or(end, |p| start + p);
        frames.push((split, end, depth + 1));
        frames.push((start, split, depth + 1));
    }
    bits
}

/// Encodes a name tree into packed bytes.
#[must_use]
pub fn encode_tree(tree: &NameTree) -> Vec<u8> {
    let mut writer = BitWriter::new();
    write_tree(tree, &mut writer);
    writer.into_bytes()
}

/// Decodes a name tree from packed bytes produced by [`encode_tree`].
///
/// # Errors
///
/// Returns a [`DecodeError`] on truncated, malformed or trailing input.
pub fn decode_tree(bytes: &[u8]) -> Result<NameTree, DecodeError> {
    let mut reader = BitReader::new(bytes);
    let tree = read_tree(&mut reader)?;
    reader.finish()?;
    Ok(tree)
}

/// Number of bits the encoding of a packed name occupies — O(n) over the
/// tag array, no tree walk.
#[must_use]
pub fn encoded_packed_bits(name: &PackedName) -> usize {
    name.encoded_bits()
}

/// Number of bits the encoding of a packed stamp occupies (update plus id).
#[must_use]
pub fn encoded_packed_stamp_bits(stamp: &PackedStamp) -> usize {
    stamp.encoded_bits()
}

/// Encodes a packed name into packed bytes. The output is byte-for-byte
/// identical to [`encode_tree`] on the equivalent trie.
///
/// Since the codec-seam refactor this delegates to
/// [`BitTrieCodec`](crate::codec::BitTrieCodec); it is kept as the
/// historical entry point of the space experiments.
#[must_use]
pub fn encode_packed(name: &PackedName) -> Vec<u8> {
    crate::codec::StampCodec::<PackedName>::encode_name(&crate::codec::BitTrieCodec, name)
}

/// Decodes a packed name from bytes produced by [`encode_packed`] (or
/// [`encode_tree`] — the format is shared).
///
/// # Errors
///
/// Returns a [`DecodeError`] on truncated, malformed or trailing input.
pub fn decode_packed(bytes: &[u8]) -> Result<PackedName, DecodeError> {
    crate::codec::StampCodec::<PackedName>::decode_name(&crate::codec::BitTrieCodec, bytes)
}

/// Encodes a packed stamp (update then id) into packed bytes; the wire
/// format is identical to [`encode_stamp`] on the equivalent stamp.
#[must_use]
pub fn encode_packed_stamp(stamp: &PackedStamp) -> Vec<u8> {
    crate::codec::StampCodec::<PackedName>::encode_stamp(&crate::codec::BitTrieCodec, stamp)
}

/// Decodes a packed stamp from bytes produced by [`encode_packed_stamp`]
/// (or [`encode_stamp`]).
///
/// # Errors
///
/// Returns a [`DecodeError`] on truncated, malformed or trailing input, or
/// when the decoded pair violates the stamp well-formedness conditions.
pub fn decode_packed_stamp(bytes: &[u8]) -> Result<PackedStamp, DecodeError> {
    crate::codec::StampCodec::<PackedName>::decode_stamp(&crate::codec::BitTrieCodec, bytes)
}

/// Encodes a name into packed bytes (via its trie form).
#[must_use]
pub fn encode_name(name: &Name) -> Vec<u8> {
    encode_tree(&NameTree::from_name(name))
}

/// Decodes a name from packed bytes produced by [`encode_name`].
///
/// # Errors
///
/// Returns a [`DecodeError`] on truncated, malformed or trailing input.
pub fn decode_name(bytes: &[u8]) -> Result<Name, DecodeError> {
    Ok(decode_tree(bytes)?.to_name())
}

/// Encodes a stamp (update then id) into packed bytes.
#[must_use]
pub fn encode_stamp(stamp: &VersionStamp) -> Vec<u8> {
    encode_packed_stamp(stamp)
}

/// Decodes a stamp from packed bytes produced by [`encode_stamp`].
///
/// # Errors
///
/// Returns a [`DecodeError`] on truncated, malformed or trailing input, or
/// when the decoded pair violates the stamp well-formedness conditions
/// (empty id or Invariant I1).
pub fn decode_stamp(bytes: &[u8]) -> Result<VersionStamp, DecodeError> {
    decode_packed_stamp(bytes)
}

/// Encodes a tree-backed stamp (update then id) into packed bytes; the
/// wire format is identical to [`encode_stamp`] on the equivalent stamp.
#[must_use]
pub fn encode_tree_stamp(stamp: &TreeStamp) -> Vec<u8> {
    let mut writer = BitWriter::new();
    write_tree(stamp.update_name(), &mut writer);
    write_tree(stamp.id_name(), &mut writer);
    writer.into_bytes()
}

/// Decodes a tree-backed stamp from packed bytes produced by
/// [`encode_tree_stamp`] (or [`encode_stamp`]).
///
/// # Errors
///
/// Returns a [`DecodeError`] on truncated, malformed or trailing input, or
/// when the decoded pair violates the stamp well-formedness conditions
/// (empty id or Invariant I1).
pub fn decode_tree_stamp(bytes: &[u8]) -> Result<TreeStamp, DecodeError> {
    let mut reader = BitReader::new(bytes);
    let update = read_tree(&mut reader)?;
    let id = read_tree(&mut reader)?;
    reader.finish()?;
    TreeStamp::from_parts(update, id)
        .map_err(|_| DecodeError::Malformed("decoded pair is not a valid stamp"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stamp::Stamp;

    fn tree(s: &str) -> NameTree {
        s.parse().expect("valid name literal")
    }

    const SAMPLES: &[&str] = &[
        "{}",
        "{ε}",
        "{0}",
        "{1}",
        "{0, 1}",
        "{01, 1}",
        "{00, 011}",
        "{000, 011, 1}",
        "{00, 01, 10, 11}",
        "{0110, 0111, 010, 00, 1}",
    ];

    #[test]
    fn tree_roundtrip() {
        for lit in SAMPLES {
            let t = tree(lit);
            let bytes = encode_tree(&t);
            let decoded = decode_tree(&bytes).unwrap();
            assert_eq!(decoded, t, "roundtrip failed for {lit}");
            assert_eq!(encoded_tree_bits(&t).div_ceil(8), bytes.len());
        }
    }

    #[test]
    fn name_roundtrip() {
        for lit in SAMPLES {
            let n: Name = lit.parse().unwrap();
            let bytes = encode_name(&n);
            assert_eq!(decode_name(&bytes).unwrap(), n);
            assert_eq!(encoded_name_bits(&n), encoded_tree_bits(&NameTree::from_name(&n)));
        }
    }

    #[test]
    fn stamp_roundtrip() {
        let seed = VersionStamp::seed();
        let (a, b) = seed.fork();
        let a1 = a.update();
        let joined = a1.join_non_reducing(&b);
        let (c, d) = joined.fork();
        for stamp in [seed, a, b, a1, joined, c.update(), d] {
            let bytes = encode_stamp(&stamp);
            assert_eq!(decode_stamp(&bytes).unwrap(), stamp);
            assert_eq!(encoded_stamp_bits(&stamp).div_ceil(8), bytes.len());
        }
    }

    #[test]
    fn encoded_sizes_are_small_for_small_stamps() {
        // The seed stamp encodes to 4 bits (two `Elem`s), i.e. one byte.
        let seed = VersionStamp::seed();
        assert_eq!(encoded_stamp_bits(&seed), 4);
        assert_eq!(encode_stamp(&seed).len(), 1);
        // A freshly forked replica is still tiny.
        let (a, _) = seed.fork();
        assert!(encoded_stamp_bits(&a) <= 8);
    }

    #[test]
    fn decode_rejects_truncated_input() {
        let (a, b) = VersionStamp::seed().fork();
        let stamp = a.update().join_non_reducing(&b);
        let bytes = encode_stamp(&stamp);
        assert!(bytes.len() > 1);
        let truncated = &bytes[..bytes.len() - 1];
        assert!(matches!(
            decode_stamp(truncated),
            Err(DecodeError::UnexpectedEnd)
                | Err(DecodeError::Malformed(_))
                | Err(DecodeError::TrailingData)
        ));
        assert_eq!(decode_tree(&[]), Err(DecodeError::UnexpectedEnd));
    }

    #[test]
    fn decode_rejects_trailing_data() {
        let mut bytes = encode_tree(&tree("{0, 1}"));
        bytes.push(0xFF);
        assert_eq!(decode_tree(&bytes), Err(DecodeError::TrailingData));

        // set a padding bit
        let bytes = encode_tree(&NameTree::Elem); // 2 bits used
        let mut corrupted = bytes.clone();
        corrupted[0] |= 0b0000_0001;
        assert_eq!(decode_tree(&corrupted), Err(DecodeError::TrailingData));
    }

    #[test]
    fn decode_rejects_malformed_trees_and_stamps() {
        // Node with two empty children: tag 11 then 0 then 0.
        let mut writer = BitWriter::new();
        for bit in [Bit::One, Bit::One, Bit::Zero, Bit::Zero] {
            writer.push(bit);
        }
        let bytes = writer.into_bytes();
        assert!(matches!(decode_tree(&bytes), Err(DecodeError::Malformed(_))));

        // A stamp whose update exceeds its id: encode manually and reject.
        let bad = Stamp::from_parts_unchecked(tree("{0, 1}"), tree("{0}"));
        let mut writer = BitWriter::new();
        write_tree(bad.update_name(), &mut writer);
        write_tree(bad.id_name(), &mut writer);
        let bytes = writer.into_bytes();
        assert!(matches!(decode_stamp(&bytes), Err(DecodeError::Malformed(_))));
    }

    #[test]
    fn bit_writer_and_reader_roundtrip() {
        let mut writer = BitWriter::new();
        let pattern = [
            Bit::One,
            Bit::Zero,
            Bit::One,
            Bit::One,
            Bit::Zero,
            Bit::Zero,
            Bit::One,
            Bit::Zero,
            Bit::One,
        ];
        for &bit in &pattern {
            writer.push(bit);
        }
        assert_eq!(writer.bit_len(), pattern.len());
        let bytes = writer.into_bytes();
        let mut reader = BitReader::new(&bytes);
        for &expected in &pattern {
            assert_eq!(reader.read().unwrap(), expected);
        }
        assert_eq!(reader.position(), pattern.len());
        assert!(reader.finish().is_ok());
    }

    #[test]
    fn encoded_bits_track_tree_shape() {
        assert_eq!(encoded_tree_bits(&NameTree::Empty), 1);
        assert_eq!(encoded_tree_bits(&NameTree::Elem), 2);
        assert_eq!(encoded_tree_bits(&tree("{0, 1}")), 2 + 2 + 2);
        assert_eq!(encoded_tree_bits(&tree("{0}")), 2 + 2 + 1);
    }
}
