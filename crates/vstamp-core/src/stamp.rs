//! Version stamps (Sections 4 and 6).
//!
//! A version stamp is a pair `(update, id)` of [names](crate::Name). The
//! three operations of Definition 4.3 transform stamps *locally* — no global
//! state of any kind is consulted:
//!
//! * `update`: `(u, i) → (i, i)` — the identity is copied into the update
//!   component;
//! * `fork`: `(u, i) → (u, i·0), (u, i·1)` — the identity is split by
//!   appending a bit to every string;
//! * `join`: `(u_a, i_a), (u_b, i_b) → (u_a ⊔ u_b, i_a ⊔ i_b)` — both
//!   components are joined in the name semilattice, and (in the reducing
//!   variant of Section 6) the result is simplified.
//!
//! Two coexisting stamps are compared through their update components:
//! `a ≤ b ⟺ fst(a) ⊑ fst(b)`, which by Corollary 5.2 coincides with
//! inclusion of causal histories for elements of the same frontier.
//!
//! # Frontier ordering, not global ordering
//!
//! Version stamps order elements of the *same frontier* (coexisting
//! replicas). Comparing a live stamp against a stale one — e.g. a replica
//! that has since been consumed by a join — is not meaningful, exactly as in
//! the paper (Section 1.2). Keep only the stamps of live replicas.
//!
//! # Examples
//!
//! The canonical fork/update/join round trip over three replicas:
//!
//! ```
//! use vstamp_core::{Relation, VersionStamp};
//!
//! let seed = VersionStamp::seed();
//! let (a, rest) = seed.fork();
//! let (b, c) = rest.fork();
//! assert_eq!(a.relation(&b), Relation::Equal); // nothing written yet
//!
//! let a = a.update();                          // write on replica a
//! assert_eq!(a.relation(&b), Relation::Dominates);
//!
//! let b = b.update();                          // concurrent write on b
//! assert_eq!(a.relation(&b), Relation::Concurrent);
//!
//! let merged = a.join(&b);                     // reconcile a and b
//! assert_eq!(merged.relation(&c), Relation::Dominates); // c missed both writes
//! ```

use core::fmt;

use crate::bitstring::Bit;
use crate::error::StampError;
use crate::name::Name;
use crate::name_like::NameLike;
use crate::packed::PackedName;
use crate::relation::Relation;
use crate::tree::NameTree;

/// Whether joins apply the simplification rule of Section 6.
///
/// The paper first proves the mechanism correct without simplification
/// (Sections 4–5) and then shows the rewriting rule preserves every invariant
/// and the frontier order (Section 6). The evaluation (experiment E9)
/// measures how much space the rule saves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Reduction {
    /// Simplify after every join (the practical mechanism).
    #[default]
    Reducing,
    /// Never simplify (the model of Section 4, used as the proof baseline).
    NonReducing,
}

impl Reduction {
    /// Returns `true` for [`Reduction::Reducing`].
    #[must_use]
    pub fn is_reducing(self) -> bool {
        matches!(self, Reduction::Reducing)
    }
}

impl fmt::Display for Reduction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Reduction::Reducing => "reducing",
            Reduction::NonReducing => "non-reducing",
        })
    }
}

/// A version stamp `(update, id)`, generic over the name representation.
///
/// Use the [`VersionStamp`] alias (packed tag array, the workspace default)
/// unless you specifically want the literal antichain representation
/// ([`SetStamp`]) or the boxed trie ([`TreeStamp`]).
#[derive(Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Stamp<N = PackedName> {
    update: N,
    id: N,
}

/// Version stamp backed by the flat preorder tag array ([`PackedName`]) —
/// the workspace default: cache-friendly, allocation-free hot paths (see
/// the `repr` ablation in the benchmark crate).
pub type VersionStamp = Stamp<PackedName>;

/// Version stamp backed by the literal antichain-of-strings representation
/// of the paper; used by the model-level tests and the `repr` ablation.
pub type SetStamp = Stamp<Name>;

/// Version stamp backed by the boxed binary-trie representation.
///
/// Historical default up to the packed-name flip; kept as a comparison
/// representation for the `repr` ablation and structure-sharing workloads.
/// New code should prefer [`VersionStamp`].
pub type TreeStamp = Stamp<NameTree>;

/// Version stamp backed by the flat preorder tag array (same as
/// [`VersionStamp`]; kept for ablation-table symmetry).
pub type PackedStamp = Stamp<PackedName>;

impl<N: NameLike> Stamp<N> {
    /// The stamp of the initial element of a system: `({ε}, {ε})`
    /// (Definition 4.3).
    ///
    /// # Examples
    ///
    /// ```
    /// use vstamp_core::VersionStamp;
    /// let seed = VersionStamp::seed();
    /// assert!(seed.is_seed_identity());
    /// assert_eq!(seed.to_string(), "[{ε} | {ε}]");
    /// ```
    #[must_use]
    pub fn seed() -> Self {
        Stamp { update: N::epsilon(), id: N::epsilon() }
    }

    /// Builds a stamp from its two components, validating well-formedness.
    ///
    /// # Errors
    ///
    /// Returns [`StampError::EmptyId`] if the id is the empty name (a live
    /// element always owns at least one string) and
    /// [`StampError::UpdateExceedsId`] if Invariant I1 (`update ⊑ id`) does
    /// not hold.
    ///
    /// # Examples
    ///
    /// ```
    /// use vstamp_core::{Name, SetStamp};
    /// let update: Name = "{0}".parse().unwrap();
    /// let id: Name = "{0, 1}".parse().unwrap();
    /// let stamp = SetStamp::from_parts(update, id)?;
    /// assert_eq!(stamp.to_string(), "[{0} | {0, 1}]");
    /// # Ok::<(), vstamp_core::StampError>(())
    /// ```
    pub fn from_parts(update: N, id: N) -> Result<Self, StampError> {
        if id.is_empty() {
            return Err(StampError::EmptyId);
        }
        if !update.leq(&id) {
            return Err(StampError::UpdateExceedsId { update: update.to_name(), id: id.to_name() });
        }
        Ok(Stamp { update, id })
    }

    /// Builds a stamp from its components without validation.
    ///
    /// Useful for constructing counterexamples in tests; every stamp produced
    /// by the public operations satisfies the checked conditions, so library
    /// code should prefer [`Stamp::from_parts`].
    #[must_use]
    pub fn from_parts_unchecked(update: N, id: N) -> Self {
        Stamp { update, id }
    }

    /// The update component (`fst` in the paper) — what this element knows
    /// about past updates.
    #[must_use]
    pub fn update_name(&self) -> &N {
        &self.update
    }

    /// The id component (`snd` in the paper) — the element's identity within
    /// the current frontier.
    #[must_use]
    pub fn id_name(&self) -> &N {
        &self.id
    }

    /// Deconstructs the stamp into `(update, id)`.
    #[must_use]
    pub fn into_parts(self) -> (N, N) {
        (self.update, self.id)
    }

    /// Returns `true` when the identity is `{ε}`, i.e. this element is (or
    /// has collapsed back into) the sole owner of the whole identity space.
    #[must_use]
    pub fn is_seed_identity(&self) -> bool {
        self.id.is_epsilon()
    }

    /// The `update` operation: `(u, i) → (i, i)`.
    ///
    /// Subsequent updates with no intervening fork or join leave the stamp
    /// unchanged — information irrelevant to frontier comparison is never
    /// stored.
    ///
    /// # Examples
    ///
    /// ```
    /// use vstamp_core::VersionStamp;
    /// let (a, _b) = VersionStamp::seed().fork();
    /// let once = a.update();
    /// let twice = once.update();
    /// assert_eq!(once, twice);
    /// ```
    #[must_use]
    pub fn update(&self) -> Self {
        Stamp { update: self.id.clone(), id: self.id.clone() }
    }

    /// The `fork` operation: `(u, i) → ((u, i·0), (u, i·1))`.
    ///
    /// Forking is how replicas are created; it requires no coordination and
    /// can be performed under any partition.
    #[must_use]
    pub fn fork(&self) -> (Self, Self) {
        (
            Stamp { update: self.update.clone(), id: self.id.append(Bit::Zero) },
            Stamp { update: self.update.clone(), id: self.id.append(Bit::One) },
        )
    }

    /// The `join` operation with simplification (Section 6):
    /// `(u_a ⊔ u_b, i_a ⊔ i_b)` reduced to normal form.
    ///
    /// # Examples
    ///
    /// ```
    /// use vstamp_core::VersionStamp;
    /// let (a, b) = VersionStamp::seed().fork();
    /// let joined = a.join(&b);
    /// assert_eq!(joined, VersionStamp::seed());
    /// ```
    #[must_use]
    pub fn join(&self, other: &Self) -> Self {
        self.join_with(other, Reduction::Reducing)
    }

    /// The `join` operation of Definition 4.3, without simplification.
    #[must_use]
    pub fn join_non_reducing(&self, other: &Self) -> Self {
        self.join_with(other, Reduction::NonReducing)
    }

    /// Joins under an explicit [`Reduction`] policy.
    #[must_use]
    pub fn join_with(&self, other: &Self, reduction: Reduction) -> Self {
        let joined = Stamp { update: self.update.join(&other.update), id: self.id.join(&other.id) };
        match reduction {
            Reduction::Reducing => joined.reduce(),
            Reduction::NonReducing => joined,
        }
    }

    /// Applies the simplification rule of Section 6 until it no longer
    /// applies, returning the normal form of the stamp.
    #[must_use]
    pub fn reduce(&self) -> Self {
        let (update, id) = N::reduce_pair(&self.update, &self.id);
        Stamp { update, id }
    }

    /// Returns `true` when no simplification step applies.
    #[must_use]
    pub fn is_reduced(&self) -> bool {
        self == &self.reduce()
    }

    /// Synchronization of two replicas, expressed as join followed by fork
    /// (Section 1.1): both replicas end up with the combined knowledge and
    /// fresh disjoint identities.
    ///
    /// # Examples
    ///
    /// ```
    /// use vstamp_core::{Relation, VersionStamp};
    /// let (a, b) = VersionStamp::seed().fork();
    /// let a = a.update();
    /// let (a2, b2) = a.sync(&b);
    /// assert_eq!(a2.relation(&b2), Relation::Equal);
    /// ```
    #[must_use]
    pub fn sync(&self, other: &Self) -> (Self, Self) {
        self.join(other).fork()
    }

    /// Whether this stamp's knowledge is included in `other`'s:
    /// `fst(self) ⊑ fst(other)`.
    #[must_use]
    pub fn leq(&self, other: &Self) -> bool {
        self.update.leq(&other.update)
    }

    /// Classifies two coexisting stamps: equivalent, obsolete in one
    /// direction, or concurrent (mutually inconsistent).
    ///
    /// By Corollary 5.2 this matches the comparison of causal histories for
    /// elements of the same frontier.
    #[must_use]
    pub fn relation(&self, other: &Self) -> Relation {
        Relation::from_leq(self.leq(other), other.leq(self))
    }

    /// Returns `true` when the two stamps are mutually inconsistent.
    #[must_use]
    pub fn is_concurrent_with(&self, other: &Self) -> bool {
        self.relation(other).is_concurrent()
    }

    /// Checks the local well-formedness conditions: the id is non-empty and
    /// Invariant I1 (`update ⊑ id`) holds.
    ///
    /// # Errors
    ///
    /// Returns the first violated condition as a [`StampError`].
    pub fn validate(&self) -> Result<(), StampError> {
        if self.id.is_empty() {
            return Err(StampError::EmptyId);
        }
        if !self.update.leq(&self.id) {
            return Err(StampError::UpdateExceedsId {
                update: self.update.to_name(),
                id: self.id.to_name(),
            });
        }
        Ok(())
    }

    /// Total bits across the strings of both components — the space metric
    /// reported by experiment E7.
    #[must_use]
    pub fn bit_size(&self) -> usize {
        self.update.bit_size() + self.id.bit_size()
    }

    /// Number of strings across both components.
    #[must_use]
    pub fn string_count(&self) -> usize {
        self.update.string_count() + self.id.string_count()
    }

    /// Depth of the deepest string across both components.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.update.depth().max(self.id.depth())
    }

    /// Converts to the literal antichain representation, whatever the
    /// backing representation is.
    #[must_use]
    pub fn to_set_stamp(&self) -> SetStamp {
        Stamp { update: self.update.to_name(), id: self.id.to_name() }
    }

    /// Converts to the boxed trie representation.
    #[must_use]
    pub fn to_tree_stamp(&self) -> TreeStamp {
        Stamp {
            update: NameTree::from_name(&self.update.to_name()),
            id: NameTree::from_name(&self.id.to_name()),
        }
    }

    /// Converts to the flat tag-array representation.
    #[must_use]
    pub fn to_packed_stamp(&self) -> PackedStamp {
        Stamp {
            update: PackedName::from_name(&self.update.to_name()),
            id: PackedName::from_name(&self.id.to_name()),
        }
    }

    /// Number of bits the wire encoding of this stamp occupies, computed
    /// directly on the backing representation.
    #[must_use]
    pub fn encoded_bits(&self) -> usize {
        self.update.encoded_bits() + self.id.encoded_bits()
    }
}

impl<N: NameLike> Default for Stamp<N> {
    /// The default stamp is the seed `({ε}, {ε})`.
    fn default() -> Self {
        Stamp::seed()
    }
}

impl<N: NameLike> fmt::Display for Stamp<N> {
    /// Formats as the paper does: `[update | id]`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} | {}]", self.update, self.id)
    }
}

impl<N: NameLike> fmt::Debug for Stamp<N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Stamp[{} | {}]", self.update, self.id)
    }
}

impl From<SetStamp> for TreeStamp {
    fn from(stamp: SetStamp) -> Self {
        stamp.to_tree_stamp()
    }
}

impl From<TreeStamp> for SetStamp {
    fn from(stamp: TreeStamp) -> Self {
        stamp.to_set_stamp()
    }
}

impl From<SetStamp> for PackedStamp {
    fn from(stamp: SetStamp) -> Self {
        stamp.to_packed_stamp()
    }
}

impl From<TreeStamp> for PackedStamp {
    fn from(stamp: TreeStamp) -> Self {
        stamp.to_packed_stamp()
    }
}

impl From<PackedStamp> for SetStamp {
    fn from(stamp: PackedStamp) -> Self {
        stamp.to_set_stamp()
    }
}

impl From<PackedStamp> for TreeStamp {
    fn from(stamp: PackedStamp) -> Self {
        stamp.to_tree_stamp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name(s: &str) -> Name {
        s.parse().expect("valid name literal")
    }

    #[test]
    fn seed_stamp() {
        let seed = VersionStamp::seed();
        assert!(seed.is_seed_identity());
        assert_eq!(seed.update_name(), &PackedName::epsilon());
        assert_eq!(seed.id_name(), &PackedName::epsilon());
        assert_eq!(seed, VersionStamp::default());
        assert_eq!(seed.to_string(), "[{ε} | {ε}]");
        assert!(seed.validate().is_ok());
        assert_eq!(seed.bit_size(), 0);
        assert_eq!(seed.string_count(), 2);
        assert_eq!(seed.depth(), 0);
    }

    #[test]
    fn update_copies_id_and_is_idempotent() {
        let (a, _) = VersionStamp::seed().fork();
        let updated = a.update();
        assert_eq!(updated.update_name(), a.id_name());
        assert_eq!(updated.id_name(), a.id_name());
        assert_eq!(updated.update(), updated, "repeated updates must not change the stamp");
    }

    #[test]
    fn fork_splits_identity_and_keeps_update() {
        let seed = VersionStamp::seed();
        let (a, b) = seed.fork();
        assert_eq!(a.id_name().to_name(), name("{0}"));
        assert_eq!(b.id_name().to_name(), name("{1}"));
        assert_eq!(a.update_name(), seed.update_name());
        assert_eq!(b.update_name(), seed.update_name());
        // forked identities are disjoint
        assert!(a.id_name().to_name().all_incomparable_with(&b.id_name().to_name()));
        let (aa, ab) = a.fork();
        assert_eq!(aa.id_name().to_name(), name("{00}"));
        assert_eq!(ab.id_name().to_name(), name("{01}"));
    }

    #[test]
    fn join_of_fork_restores_identity() {
        let seed = VersionStamp::seed();
        let (a, b) = seed.fork();
        assert_eq!(a.join(&b), seed);
        // deeper: fork twice and join everything back
        let (aa, ab) = a.fork();
        let joined = aa.join(&ab).join(&b);
        assert_eq!(joined, seed);
    }

    #[test]
    fn non_reducing_join_keeps_split_identity() {
        let seed = VersionStamp::seed();
        let (a, b) = seed.fork();
        let joined = a.join_non_reducing(&b);
        assert_eq!(joined.id_name().to_name(), name("{0, 1}"));
        assert_ne!(joined, seed);
        assert!(!joined.is_reduced());
        assert_eq!(joined.reduce(), seed);
        assert_eq!(a.join_with(&b, Reduction::NonReducing), joined);
        assert_eq!(a.join_with(&b, Reduction::Reducing), seed);
    }

    #[test]
    fn relations_track_updates() {
        let (a, b) = VersionStamp::seed().fork();
        assert_eq!(a.relation(&b), Relation::Equal);
        let a1 = a.update();
        assert_eq!(a1.relation(&b), Relation::Dominates);
        assert_eq!(b.relation(&a1), Relation::Dominated);
        assert!(b.leq(&a1));
        assert!(!a1.leq(&b));
        let b1 = b.update();
        assert_eq!(a1.relation(&b1), Relation::Concurrent);
        assert!(a1.is_concurrent_with(&b1));
    }

    #[test]
    fn join_dominates_live_third_replica() {
        // Comparisons are only meaningful within a frontier, so the merged
        // stamp is compared against a replica that is still live.
        let (a, rest) = VersionStamp::seed().fork();
        let (b, c) = rest.fork();
        let a = a.update();
        let b = b.update();
        let merged = a.join(&b);
        assert_eq!(merged.relation(&c), Relation::Dominates);
        assert_eq!(c.relation(&merged), Relation::Dominated);
        // under the non-reducing model the same relation holds
        let merged_nr = a.join_non_reducing(&b);
        assert_eq!(merged_nr.relation(&c), Relation::Dominates);
    }

    #[test]
    fn sync_produces_equivalent_replicas() {
        let (a, b) = VersionStamp::seed().fork();
        let a = a.update();
        let (a2, b2) = a.sync(&b);
        assert_eq!(a2.relation(&b2), Relation::Equal);
        assert_ne!(a2.id_name(), b2.id_name());
    }

    #[test]
    fn update_dominates_past_after_fork() {
        // Invariant I3's motivating example: an update on one side of a fork
        // must not become dominated by the other side.
        let (a, b) = VersionStamp::seed().fork();
        let a1 = a.update();
        assert!(!a1.leq(&b), "updated replica must not appear obsolete");
        assert!(b.leq(&a1));
    }

    #[test]
    fn from_parts_validates() {
        assert!(SetStamp::from_parts(name("{0}"), name("{0, 1}")).is_ok());
        assert_eq!(SetStamp::from_parts(name("{0}"), Name::empty()), Err(StampError::EmptyId));
        let err = SetStamp::from_parts(name("{1}"), name("{0}")).unwrap_err();
        assert!(matches!(err, StampError::UpdateExceedsId { .. }));
        assert!(err.to_string().contains("update"));
        let unchecked = SetStamp::from_parts_unchecked(name("{1}"), name("{0}"));
        assert!(unchecked.validate().is_err());
    }

    #[test]
    fn into_parts_roundtrip() {
        let stamp = SetStamp::from_parts(name("{0}"), name("{0, 1}")).unwrap();
        let (u, i) = stamp.clone().into_parts();
        assert_eq!(SetStamp::from_parts(u, i).unwrap(), stamp);
    }

    #[test]
    fn representation_conversions_agree() {
        let (a, b) = SetStamp::seed().fork();
        let a = a.update();
        let packed_a: VersionStamp = a.clone().into();
        let packed_b: VersionStamp = b.clone().into();
        assert_eq!(packed_a.relation(&packed_b), a.relation(&b));
        assert_eq!(packed_a.join(&packed_b).to_set_stamp(), a.join(&b));
        let back: SetStamp = packed_a.clone().into();
        assert_eq!(back, a);
        assert_eq!(packed_a.bit_size(), a.bit_size());
        assert_eq!(packed_a.string_count(), a.string_count());
        assert_eq!(packed_a.depth(), a.depth());
        let tree_a: TreeStamp = a.clone().into();
        let round: PackedStamp = tree_a.clone().into();
        assert_eq!(round, packed_a);
        let tree_back: TreeStamp = round.into();
        assert_eq!(tree_back, tree_a);
    }

    #[test]
    fn operations_preserve_validity() {
        // a small deterministic exploration of the operation space
        let mut frontier = vec![VersionStamp::seed()];
        for step in 0..40usize {
            match step % 3 {
                0 => {
                    let (x, y) = frontier[step % frontier.len()].fork();
                    let idx = step % frontier.len();
                    frontier[idx] = x;
                    frontier.push(y);
                }
                1 => {
                    let idx = step % frontier.len();
                    frontier[idx] = frontier[idx].update();
                }
                _ => {
                    if frontier.len() >= 2 {
                        let b = frontier.pop().expect("len checked");
                        let idx = step % frontier.len();
                        frontier[idx] = frontier[idx].join(&b);
                    }
                }
            }
            for stamp in &frontier {
                stamp.validate().expect("reachable stamps are always valid");
            }
        }
    }

    #[test]
    fn display_formats_match_paper_notation() {
        let (a, b) = VersionStamp::seed().fork();
        let a = a.update();
        assert_eq!(a.to_string(), "[{0} | {0}]");
        assert_eq!(b.to_string(), "[{ε} | {1}]");
        let joined = a.join_non_reducing(&b);
        assert_eq!(joined.to_string(), "[{0} | {0, 1}]");
        assert_eq!(format!("{joined:?}"), "Stamp[{0} | {0, 1}]");
        assert_eq!(Reduction::Reducing.to_string(), "reducing");
        assert_eq!(Reduction::NonReducing.to_string(), "non-reducing");
        assert!(Reduction::default().is_reducing());
    }

    #[cfg(feature = "serde")]
    #[test]
    fn serde_roundtrip() {
        let (a, b) = VersionStamp::seed().fork();
        let stamp = a.update().join_non_reducing(&b);
        let json = serde_json::to_string(&stamp).unwrap();
        let back: VersionStamp = serde_json::from_str(&json).unwrap();
        assert_eq!(back, stamp);
    }
}
