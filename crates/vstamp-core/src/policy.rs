//! Reduction policies: the stamp lifecycle seam.
//!
//! The paper presents exactly two lifecycles: the non-reducing model of
//! Section 4 (joins keep every string, the proof baseline) and the eagerly
//! reducing mechanism of Section 6 (every join is followed by the rewriting
//! rule). The original code hard-wired that choice as an on/off flag
//! ([`Reduction`]) inside the mechanism. This module turns the choice into a
//! first-class seam: a [`ReductionPolicy`] decides, at every lifecycle event,
//! what the produced stamp looks like.
//!
//! Shipped policies:
//!
//! * [`Eager`] — Section 6 verbatim: reduce after every join. The practical
//!   default.
//! * [`NoReduce`] — Section 4 verbatim: never reduce. Space grows without
//!   bound (exponentially under sync-heavy workloads); kept as the proof
//!   baseline and for the E9 ablation.
//! * [`Deferred`] — batched reduction: joins stay cheap (no rewriting) until
//!   the id crosses a string-count threshold, then the accumulated sibling
//!   pairs are collapsed in one pass. Sound because each rewriting step
//!   preserves the frontier order (Section 6), so *when* the steps run is
//!   immaterial to comparisons.
//! * [`FrontierGc`](crate::gc::FrontierGc) — eager reduction plus
//!   frontier-evidence identity garbage collection (see the
//!   [`gc`](crate::gc) module), the answer to the identity-fragmentation
//!   wall measured in ROADMAP.
//!
//! [`Reduction`] itself also implements the trait, as a runtime-dispatched
//! policy, so code that selects reducing/non-reducing from a flag keeps one
//! mechanism type.
//!
//! Policies are *mechanism-level* state (see
//! [`StampMechanism`](crate::StampMechanism)): the version-stamp operations
//! on [`Stamp`] itself remain pure and stateless, exactly as in the paper.

use crate::name_like::NameLike;
use crate::stamp::{Reduction, Stamp};

/// A policy deciding how stamps are reduced (and possibly collapsed) along
/// their lifecycle.
///
/// The only mandatory decision is [`ReductionPolicy::join`]: given the two
/// input stamps of a join, produce the merged stamp. The `on_*` hooks exist
/// for policies that need *frontier evidence* — a mirror of the live
/// elements — such as [`FrontierGc`](crate::gc::FrontierGc); stateless
/// policies ignore them.
///
/// Every shipped policy preserves the frontier order of Corollary 5.2: for
/// coexisting elements, the pairwise [`Relation`](crate::Relation)
/// classification is identical to the causal-history oracle no matter which
/// policy produced the stamps (property-tested in
/// `tests/policy_properties.rs`).
pub trait ReductionPolicy<N: NameLike>: Clone + core::fmt::Debug {
    /// Short label of the policy (`eager`, `none`, `deferred`,
    /// `frontier-gc`), used in mechanism and report names.
    fn policy_name(&self) -> &'static str;

    /// Called when the initial element of a configuration is created.
    fn on_initial(&mut self, _seed: &Stamp<N>) {}

    /// Called after an `update` transition replaced `old` by `new`.
    fn on_update(&mut self, _old: &Stamp<N>, _new: &Stamp<N>) {}

    /// Called after a `fork` transition replaced `old` by `left`/`right`.
    fn on_fork(&mut self, _old: &Stamp<N>, _left: &Stamp<N>, _right: &Stamp<N>) {}

    /// Produces the stamp of a `join` transition consuming `left` and
    /// `right`.
    fn join(&mut self, left: &Stamp<N>, right: &Stamp<N>) -> Stamp<N>;
}

/// Reduce after every join — the practical mechanism of Section 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Eager;

impl<N: NameLike> ReductionPolicy<N> for Eager {
    fn policy_name(&self) -> &'static str {
        "eager"
    }

    fn join(&mut self, left: &Stamp<N>, right: &Stamp<N>) -> Stamp<N> {
        left.join_with(right, Reduction::Reducing)
    }
}

/// Never reduce — the model of Section 4, used as the proof baseline.
///
/// Identities gain one string per fork and never lose any; under sync-heavy
/// workloads they grow exponentially with the number of sync cycles (see the
/// `simplification` report binary). Use only on short traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct NoReduce;

impl<N: NameLike> ReductionPolicy<N> for NoReduce {
    fn policy_name(&self) -> &'static str {
        "none"
    }

    fn join(&mut self, left: &Stamp<N>, right: &Stamp<N>) -> Stamp<N> {
        left.join_with(right, Reduction::NonReducing)
    }
}

/// Batched reduction: join without rewriting while the id stays small,
/// reduce in one pass once it crosses a threshold.
///
/// Because each Section-6 rewriting step preserves every frontier relation,
/// deferring the steps is sound; what is traded is the *space* of the
/// not-yet-reduced stamps against the *time* of rewriting on every join.
/// With `max_id_strings == 0` the policy degenerates to [`Eager`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Deferred {
    /// Reduce when the joined id holds more strings than this.
    pub max_id_strings: usize,
}

impl Deferred {
    /// A deferred policy reducing once the id exceeds `max_id_strings`.
    #[must_use]
    pub fn new(max_id_strings: usize) -> Self {
        Deferred { max_id_strings }
    }
}

impl Default for Deferred {
    /// Defaults to reducing only when an id exceeds 16 strings.
    fn default() -> Self {
        Deferred::new(16)
    }
}

impl<N: NameLike> ReductionPolicy<N> for Deferred {
    fn policy_name(&self) -> &'static str {
        "deferred"
    }

    fn join(&mut self, left: &Stamp<N>, right: &Stamp<N>) -> Stamp<N> {
        let raw = left.join_with(right, Reduction::NonReducing);
        if raw.id_name().string_count() > self.max_id_strings {
            raw.reduce()
        } else {
            raw
        }
    }
}

/// The legacy on/off flag as a runtime-dispatched policy, for call sites
/// that select reducing/non-reducing dynamically while keeping a single
/// mechanism type.
impl<N: NameLike> ReductionPolicy<N> for Reduction {
    fn policy_name(&self) -> &'static str {
        match self {
            Reduction::Reducing => "eager",
            Reduction::NonReducing => "none",
        }
    }

    fn join(&mut self, left: &Stamp<N>, right: &Stamp<N>) -> Stamp<N> {
        left.join_with(right, *self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stamp::VersionStamp;

    #[test]
    fn eager_reduces_and_none_does_not() {
        let (a, b) = VersionStamp::seed().fork();
        let mut eager = Eager;
        let mut none = NoReduce;
        assert_eq!(ReductionPolicy::join(&mut eager, &a, &b), VersionStamp::seed());
        let raw = ReductionPolicy::join(&mut none, &a, &b);
        assert_ne!(raw, VersionStamp::seed());
        assert_eq!(raw.reduce(), VersionStamp::seed());
        assert_eq!(ReductionPolicy::<crate::PackedName>::policy_name(&eager), "eager");
        assert_eq!(ReductionPolicy::<crate::PackedName>::policy_name(&none), "none");
    }

    #[test]
    fn deferred_reduces_only_past_threshold() {
        let (a, b) = VersionStamp::seed().fork();
        // Threshold 16: the two-string join stays unreduced.
        let mut lazy = Deferred::default();
        assert_eq!(lazy.max_id_strings, 16);
        let raw = ReductionPolicy::join(&mut lazy, &a, &b);
        assert!(!raw.is_reduced());
        // Threshold 0: behaves like Eager.
        let mut eager_ish = Deferred::new(0);
        assert_eq!(ReductionPolicy::join(&mut eager_ish, &a, &b), VersionStamp::seed());
        assert_eq!(ReductionPolicy::<crate::PackedName>::policy_name(&lazy), "deferred");
    }

    #[test]
    fn reduction_flag_acts_as_runtime_policy() {
        let (a, b) = VersionStamp::seed().fork();
        let mut reducing = Reduction::Reducing;
        let mut plain = Reduction::NonReducing;
        assert_eq!(ReductionPolicy::join(&mut reducing, &a, &b), a.join(&b));
        assert_eq!(ReductionPolicy::join(&mut plain, &a, &b), a.join_non_reducing(&b));
        assert_eq!(ReductionPolicy::<crate::PackedName>::policy_name(&reducing), "eager");
        assert_eq!(ReductionPolicy::<crate::PackedName>::policy_name(&plain), "none");
    }
}
