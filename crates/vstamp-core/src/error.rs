//! Error types for the version-stamp core crate.

use core::fmt;

use crate::name::Name;

/// Error produced when constructing or validating a [`Stamp`](crate::Stamp).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StampError {
    /// The id component is the empty name; a live element always owns at
    /// least one identity string.
    EmptyId,
    /// Invariant I1 is violated: the update component is not dominated by
    /// the id component.
    UpdateExceedsId {
        /// The offending update component.
        update: Name,
        /// The id component it should be dominated by.
        id: Name,
    },
}

impl fmt::Display for StampError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StampError::EmptyId => f.write_str("stamp id component is the empty name"),
            StampError::UpdateExceedsId { update, id } => {
                write!(f, "stamp update component {update} is not dominated by id component {id}")
            }
        }
    }
}

impl std::error::Error for StampError {}

/// Error produced when applying an [`Operation`](crate::Operation) to a
/// [`Configuration`](crate::Configuration).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// The operation referenced an element that is not part of the current
    /// frontier.
    UnknownElement(crate::ElementId),
    /// A join operation named the same element twice.
    JoinWithSelf(crate::ElementId),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::UnknownElement(id) => {
                write!(f, "element {id} is not part of the current frontier")
            }
            ConfigError::JoinWithSelf(id) => {
                write!(f, "cannot join element {id} with itself")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Error produced when decoding a stamp, name or tree from its compact
/// binary encoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The input ended before the value was complete.
    UnexpectedEnd,
    /// The decoded tree or name is not well formed (e.g. not an antichain).
    Malformed(&'static str),
    /// Trailing bits remained after the value was decoded.
    TrailingData,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnexpectedEnd => f.write_str("unexpected end of encoded input"),
            DecodeError::Malformed(what) => write!(f, "malformed encoded value: {what}"),
            DecodeError::TrailingData => f.write_str("trailing data after encoded value"),
        }
    }
}

impl std::error::Error for DecodeError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ElementId;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = StampError::EmptyId;
        assert!(e.to_string().starts_with("stamp id"));
        let e = StampError::UpdateExceedsId {
            update: "{1}".parse().unwrap(),
            id: "{0}".parse().unwrap(),
        };
        assert!(e.to_string().contains("{1}"));
        assert!(e.to_string().contains("{0}"));

        let e = ConfigError::UnknownElement(ElementId::new(7));
        assert!(e.to_string().contains('7'));
        let e = ConfigError::JoinWithSelf(ElementId::new(3));
        assert!(e.to_string().contains("itself"));

        assert!(DecodeError::UnexpectedEnd.to_string().contains("end"));
        assert!(DecodeError::Malformed("bad tag").to_string().contains("bad tag"));
        assert!(DecodeError::TrailingData.to_string().contains("trailing"));
    }

    #[test]
    fn errors_are_std_errors() {
        fn assert_error<E: std::error::Error + Send + Sync + 'static>() {}
        assert_error::<StampError>();
        assert_error::<ConfigError>();
        assert_error::<DecodeError>();
    }
}
