//! # vstamp-core — Version Stamps: decentralized version vectors
//!
//! A faithful, production-quality implementation of
//! *Version Stamps — Decentralized Version Vectors*
//! (Almeida, Baquero, Fonte — ICDCS 2002).
//!
//! Version stamps track update causality between replicas of a data element
//! under **fork / join / update** dynamics. Unlike version vectors they need
//! **no globally unique replica identifiers and no counters**: every
//! operation uses only the local stamp, so replicas can be created, updated
//! and merged under arbitrary network partitions — the mode of operation of
//! mobile and ad-hoc systems that motivates the paper.
//!
//! ## Quick start
//!
//! ```
//! use vstamp_core::{Relation, VersionStamp};
//!
//! // One initial replica…
//! let seed = VersionStamp::seed();
//! // …forked into three, with no coordination whatsoever.
//! let (a, rest) = seed.fork();
//! let (b, c) = rest.fork();
//!
//! // Writes are recorded locally.
//! let a = a.update();
//! let b = b.update();
//!
//! // Comparison classifies coexisting replicas.
//! assert_eq!(a.relation(&c), Relation::Dominates);   // c is obsolete
//! assert_eq!(a.relation(&b), Relation::Concurrent);  // a real conflict: both wrote
//!
//! // Joins merge knowledge (and shrink identities again).
//! let merged = a.join(&b);
//! assert_eq!(merged.relation(&c), Relation::Dominates);
//! ```
//!
//! ## What is in this crate
//!
//! | Module | Paper section | Contents |
//! |--------|---------------|----------|
//! | [`bitstring`] | §4 | binary strings under the prefix order |
//! | [`name`] | §4 (Def. 4.1) | names: finite antichains, `⊑`, `⊔` |
//! | [`tree`] | §4/§6 | boxed binary-trie representation of names |
//! | [`packed`] | §4/§6 | flat preorder tag-array representation (hot paths) |
//! | [`stamp`] | §4 (Def. 4.3), §6 | version stamps and their operations |
//! | [`simplify`] | §6 | the rewriting rule, normal forms, confluence helpers |
//! | [`policy`] | §4 vs §6 | the reduction-policy seam (eager / none / deferred / GC) |
//! | [`gc`] | beyond §6 | frontier-evidence identity garbage collection |
//! | [`causal`] | §2 (Def. 2.1) | causal-history reference model (global view) |
//! | [`mechanism`], [`config`] | §2/§4 | the transition system and the mechanism seam |
//! | [`invariants`] | §4 (I1–I3) | executable invariants and the frontier auditor |
//! | [`relation`] | §2 | equivalent / obsolete / concurrent classification |
//! | [`encode`] | — | the paper's compact bit encoding and the space metric |
//! | [`codec`] | — | the codec seam: bit-trie + byte-aligned varint wire formats, framing |
//!
//! The companion crates build on this one: `vstamp-baselines` (version
//! vectors, vector clocks, dotted version vectors), `vstamp-itc` (Interval
//! Tree Clocks, the successor mechanism), `vstamp-sim` (trace generators,
//! scenarios and the causal oracle used by the experiments),
//! `vstamp-panasync` (file-copy dependency tracking) and `vstamp-bench`
//! (the figure/experiment regeneration harness).
//!
//! ## Frontier ordering
//!
//! Version stamps order elements of the same *frontier* (coexisting
//! replicas). This is exactly the guarantee update tracking needs, and it is
//! what allows stamps to stay small: information that can no longer matter
//! to any coexisting element is discarded by the simplification rule.
//! Comparisons against stamps that are no longer live are unspecified.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bitstring;
pub mod causal;
pub mod codec;
pub mod config;
pub mod encode;
pub mod error;
pub mod gc;
pub mod invariants;
pub mod mechanism;
pub mod name;
pub mod name_like;
pub mod packed;
pub mod policy;
pub mod relation;
pub mod simplify;
pub mod stamp;
pub mod tree;

pub use bitstring::{Bit, BitString, ParseBitStringError, PrefixOrdering};
pub use causal::{CausalHistory, CausalMechanism, EventId};
pub use codec::{BitTrieCodec, StampCodec, VarintCodec};
pub use config::{Applied, Configuration, ElementId, Operation, Trace};
pub use error::{ConfigError, DecodeError, StampError};
pub use gc::{retire_identity, FrontierEvidence, FrontierGc};
pub use invariants::{audit_configuration, audit_frontier, InvariantReport, Violation};
pub use mechanism::{
    GcStampMechanism, Mechanism, PackedStampMechanism, SetStampMechanism, StampMechanism,
    TreeStampMechanism, VersionStampMechanism,
};
pub use name::{Name, ParseNameError};
pub use name_like::NameLike;
pub use packed::PackedName;
pub use policy::{Deferred, Eager, NoReduce, ReductionPolicy};
pub use relation::Relation;
pub use stamp::{PackedStamp, Reduction, SetStamp, Stamp, TreeStamp, VersionStamp};
pub use tree::NameTree;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<BitString>();
        assert_send_sync::<Name>();
        assert_send_sync::<NameTree>();
        assert_send_sync::<PackedName>();
        assert_send_sync::<VersionStamp>();
        assert_send_sync::<SetStamp>();
        assert_send_sync::<TreeStamp>();
        assert_send_sync::<PackedStamp>();
        assert_send_sync::<VersionStampMechanism>();
        assert_send_sync::<GcStampMechanism>();
        assert_send_sync::<CausalHistory>();
        assert_send_sync::<Relation>();
        assert_send_sync::<Trace>();
        assert_send_sync::<StampError>();
        assert_send_sync::<ConfigError>();
        assert_send_sync::<DecodeError>();
    }

    #[test]
    fn crate_level_quickstart_compiles_and_runs() {
        let seed = VersionStamp::seed();
        let (a, rest) = seed.fork();
        let (b, c) = rest.fork();
        let a = a.update();
        let b = b.update();
        assert_eq!(a.relation(&c), Relation::Dominates);
        assert_eq!(a.relation(&b), Relation::Concurrent);
        let merged = a.join(&b);
        assert_eq!(merged.relation(&c), Relation::Dominates);
    }
}
