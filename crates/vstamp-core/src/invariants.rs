//! Machine-checked versions of the paper's invariants I1–I3 (Section 4).
//!
//! The paper proves, by induction on reachable configurations, that:
//!
//! * **I1** — in every stamp, `update ⊑ id`;
//! * **I2** — for any two *distinct* frontier elements, every string of one
//!   id is incomparable with every string of the other (identities are
//!   disjoint);
//! * **I3** — for any two distinct frontier elements `x`, `y` and any string
//!   `r ∈ update_x`: if `{r} ⊑ id_y` then `{r} ⊑ update_y` (knowledge that
//!   falls inside another element's identity must already be known to that
//!   element).
//!
//! These are re-stated here as executable checks over a frontier of stamps.
//! The property-test suites (experiment E5) run them after every operation
//! of randomly generated traces, for both the reducing and non-reducing
//! mechanisms; the simulator's auditor runs them during long scenario
//! replays.

use core::fmt;

use crate::config::{Configuration, ElementId};
use crate::mechanism::{Mechanism, StampMechanism};
use crate::name::Name;
use crate::name_like::NameLike;
use crate::stamp::Stamp;

/// A single invariant violation found by the auditor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// The named component is not an antichain (well-formedness).
    NotAntichain {
        /// Element whose stamp is malformed.
        element: ElementId,
        /// `"update"` or `"id"`.
        component: &'static str,
    },
    /// Invariant I1 (`update ⊑ id`) fails for an element.
    I1 {
        /// The offending element.
        element: ElementId,
        /// Its update component.
        update: Name,
        /// Its id component.
        id: Name,
    },
    /// Invariant I2 fails for a pair of elements (their ids share comparable
    /// strings).
    I2 {
        /// First element of the offending pair.
        left: ElementId,
        /// Second element of the offending pair.
        right: ElementId,
    },
    /// Invariant I3 fails for an ordered pair of elements.
    I3 {
        /// The element contributing the update string `r`.
        source: ElementId,
        /// The element whose id dominates `r` but whose update does not.
        target: ElementId,
        /// The offending string, as a singleton name.
        witness: Name,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::NotAntichain { element, component } => {
                write!(f, "element {element}: {component} component is not an antichain")
            }
            Violation::I1 { element, update, id } => {
                write!(f, "element {element}: I1 fails, update {update} not ⊑ id {id}")
            }
            Violation::I2 { left, right } => {
                write!(f, "elements {left}, {right}: I2 fails, identities are not disjoint")
            }
            Violation::I3 { source, target, witness } => {
                write!(
                    f,
                    "elements {source} → {target}: I3 fails for string {witness} (dominated by target id but not by target update)"
                )
            }
        }
    }
}

/// Outcome of auditing a frontier against the invariants.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InvariantReport {
    violations: Vec<Violation>,
}

impl InvariantReport {
    /// Returns `true` when no violation was found.
    #[must_use]
    pub fn is_ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// The violations found, in deterministic order.
    #[must_use]
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Panics with a readable message if any violation was found. Intended
    /// for tests and the simulator's auditing mode.
    ///
    /// # Panics
    ///
    /// Panics when the report contains at least one violation.
    pub fn assert_ok(&self) {
        assert!(self.is_ok(), "invariant violations: {self}");
    }
}

impl fmt::Display for InvariantReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.violations.is_empty() {
            return f.write_str("all invariants hold");
        }
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                f.write_str("; ")?;
            }
            write!(f, "{v}")?;
        }
        Ok(())
    }
}

/// Checks Invariant I1 for a single stamp.
#[must_use]
pub fn holds_i1<N: NameLike>(stamp: &Stamp<N>) -> bool {
    stamp.update_name().leq(stamp.id_name())
}

/// Checks Invariant I2 for a pair of (distinct) stamps.
#[must_use]
pub fn holds_i2<N: NameLike>(left: &Stamp<N>, right: &Stamp<N>) -> bool {
    left.id_name().to_name().all_incomparable_with(&right.id_name().to_name())
}

/// Checks Invariant I3 for an ordered pair of (distinct) stamps: every
/// string of `source`'s update that is dominated by `target`'s id must also
/// be dominated by `target`'s update.
#[must_use]
pub fn holds_i3<N: NameLike>(source: &Stamp<N>, target: &Stamp<N>) -> bool {
    i3_witness(source, target).is_none()
}

/// Returns a string witnessing an I3 violation for the ordered pair, if any.
#[must_use]
pub fn i3_witness<N: NameLike>(source: &Stamp<N>, target: &Stamp<N>) -> Option<Name> {
    let source_update = source.update_name().to_name();
    let target_id = target.id_name().to_name();
    let target_update = target.update_name().to_name();
    for r in source_update.iter() {
        if target_id.dominates_string(r) && !target_update.dominates_string(r) {
            return Some(Name::from_string(r.clone()));
        }
    }
    None
}

/// Returns `true` when some string of `sorted` (a name's strings in the
/// deterministic [`Name::iter`] order) has `r` as a prefix.
///
/// All extensions of `r` form a contiguous run starting at the first string
/// `≥ r` (any string between `r` and one of its extensions must itself
/// extend `r`), so one binary search decides domination.
fn sorted_dominates(
    sorted: &[&crate::bitstring::BitString],
    r: &crate::bitstring::BitString,
) -> bool {
    let start = sorted.partition_point(|s| *s < r);
    sorted.get(start).is_some_and(|s| r.is_prefix_of(s))
}

/// Audits a frontier given as `(identifier, stamp)` pairs, returning every
/// violation of well-formedness and of invariants I1–I3.
///
/// The frontier-wide checks are near-linear in the total number of identity
/// strings on valid frontiers: I2 compares each string of one globally
/// sorted list only against the contiguous run of strings it dominates
/// (empty when I2 holds), and I3's domination tests are binary searches.
/// Quadratic per-pair scans made the E5 auditor unusable on fragmented
/// identities.
pub fn audit_frontier<'a, N, I>(frontier: I) -> InvariantReport
where
    N: NameLike + 'a,
    I: IntoIterator<Item = (ElementId, &'a Stamp<N>)>,
{
    let elements: Vec<(ElementId, &Stamp<N>)> = frontier.into_iter().collect();
    let mut violations = Vec::new();

    // Materialize each component once; every check below works on these.
    let updates: Vec<Name> = elements.iter().map(|(_, s)| s.update_name().to_name()).collect();
    let ids: Vec<Name> = elements.iter().map(|(_, s)| s.id_name().to_name()).collect();

    for (index, &(id, _)) in elements.iter().enumerate() {
        if !updates[index].is_antichain() {
            violations.push(Violation::NotAntichain { element: id, component: "update" });
        }
        if !ids[index].is_antichain() {
            violations.push(Violation::NotAntichain { element: id, component: "id" });
        }
        if !updates[index].leq(&ids[index]) {
            violations.push(Violation::I1 {
                element: id,
                update: updates[index].clone(),
                id: ids[index].clone(),
            });
        }
    }

    // I2: sort every identity string once, tagged with its owner. All the
    // extensions of a string form a contiguous run right after it, so each
    // string is compared against exactly the strings it dominates. Valid
    // frontiers have empty runs (one adjacent check per string); the scan
    // only goes quadratic when almost every pair violates, where the
    // violation list itself is quadratic.
    let mut all_id_strings: Vec<(&crate::bitstring::BitString, usize)> = ids
        .iter()
        .enumerate()
        .flat_map(|(owner, name)| name.iter().map(move |s| (s, owner)))
        .collect();
    all_id_strings.sort_by(|a, b| a.0.cmp(b.0));
    let mut i2_pairs: std::collections::BTreeSet<(usize, usize)> =
        std::collections::BTreeSet::new();
    for (index, &(prefix, owner)) in all_id_strings.iter().enumerate() {
        for &(extension, other) in all_id_strings[index + 1..].iter() {
            if !prefix.is_prefix_of(extension) {
                break;
            }
            if owner != other {
                i2_pairs.insert((owner.min(other), owner.max(other)));
            }
        }
    }
    for (left, right) in i2_pairs {
        violations.push(Violation::I2 { left: elements[left].0, right: elements[right].0 });
    }

    // I3: for each update string `r`, find the elements whose id dominates
    // it (a contiguous run in the global sorted list) and require their
    // updates to dominate it too.
    let sorted_updates: Vec<Vec<&crate::bitstring::BitString>> =
        updates.iter().map(|name| name.iter().collect()).collect();
    let mut i3_pairs: std::collections::BTreeSet<(usize, usize)> =
        std::collections::BTreeSet::new();
    for (source, update) in updates.iter().enumerate() {
        for r in update.iter() {
            let start = all_id_strings.partition_point(|(s, _)| *s < r);
            for &(s, target) in all_id_strings[start..].iter() {
                if !r.is_prefix_of(s) {
                    break;
                }
                if target != source
                    && !sorted_dominates(&sorted_updates[target], r)
                    && i3_pairs.insert((source, target))
                {
                    violations.push(Violation::I3 {
                        source: elements[source].0,
                        target: elements[target].0,
                        witness: Name::from_string(r.clone()),
                    });
                }
            }
        }
    }

    InvariantReport { violations }
}

/// Audits the frontier of a stamp [`Configuration`], under any reduction
/// policy.
#[must_use]
pub fn audit_configuration<N: NameLike, P>(
    config: &Configuration<StampMechanism<N, P>>,
) -> InvariantReport
where
    StampMechanism<N, P>: Mechanism<Element = Stamp<N>>,
{
    audit_frontier(config.iter())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Operation;
    use crate::mechanism::TreeStampMechanism;
    use crate::stamp::{SetStamp, VersionStamp};

    fn name(s: &str) -> Name {
        s.parse().expect("valid name literal")
    }

    #[test]
    fn single_stamp_invariants() {
        let seed = VersionStamp::seed();
        assert!(holds_i1(&seed));
        let (a, b) = seed.fork();
        assert!(holds_i1(&a) && holds_i1(&b));
        assert!(holds_i2(&a, &b));
        assert!(holds_i3(&a, &b) && holds_i3(&b, &a));
        let a1 = a.update();
        assert!(holds_i1(&a1));
        assert!(holds_i2(&a1, &b));
        assert!(holds_i3(&a1, &b) && holds_i3(&b, &a1));
    }

    #[test]
    fn constructed_violations_are_detected() {
        // I1 violation: update not dominated by id.
        let bad_i1 = SetStamp::from_parts_unchecked(name("{1}"), name("{0}"));
        assert!(!holds_i1(&bad_i1));

        // I2 violation: overlapping identities.
        let x = SetStamp::from_parts_unchecked(name("{0}"), name("{0}"));
        let y = SetStamp::from_parts_unchecked(name("{}"), name("{00}"));
        assert!(!holds_i2(&x, &y));

        // I3 violation: x knows about a string inside y's identity that y
        // does not know about.
        let x = SetStamp::from_parts_unchecked(name("{1}"), name("{0}"));
        let y = SetStamp::from_parts_unchecked(name("{}"), name("{1}"));
        assert!(!holds_i3(&x, &y));
        assert_eq!(i3_witness(&x, &y), Some(name("{1}")));
        assert!(holds_i3(&y, &x));
    }

    #[test]
    fn audit_reports_every_kind_of_violation() {
        let good = SetStamp::from_parts_unchecked(name("{0}"), name("{0}"));
        let bad = SetStamp::from_parts_unchecked(name("{1}"), name("{01}"));
        let report = audit_frontier([(ElementId::new(0), &good), (ElementId::new(1), &bad)]);
        assert!(!report.is_ok());
        // bad violates I1 (update {1} ⋢ id {01}) and I2 against good
        // (id {01} comparable with id {0}) and I3 (string 1 … actually I3
        // needs domination, check report non-empty and displays).
        assert!(report.violations().iter().any(|v| matches!(v, Violation::I1 { .. })));
        assert!(report.violations().iter().any(|v| matches!(v, Violation::I2 { .. })));
        let text = report.to_string();
        assert!(text.contains("I1") || text.contains("not ⊑"));
        let display_all: Vec<String> = report.violations().iter().map(|v| v.to_string()).collect();
        assert!(!display_all.is_empty());
    }

    #[test]
    fn audit_reports_every_i2_pair_in_nested_chains() {
        // Regression: ids {0}, {01}, {011} violate I2 pairwise; the sorted
        // scan must report all three pairs, including the non-adjacent
        // (first, third) one.
        let stamps = [
            SetStamp::from_parts_unchecked(name("{}"), name("{0}")),
            SetStamp::from_parts_unchecked(name("{}"), name("{01}")),
            SetStamp::from_parts_unchecked(name("{}"), name("{011}")),
        ];
        let report =
            audit_frontier(stamps.iter().enumerate().map(|(i, s)| (ElementId::new(i as u64), s)));
        let mut i2: Vec<(ElementId, ElementId)> = report
            .violations()
            .iter()
            .filter_map(|v| match v {
                Violation::I2 { left, right } => Some((*left, *right)),
                _ => None,
            })
            .collect();
        i2.sort();
        assert_eq!(
            i2,
            vec![
                (ElementId::new(0), ElementId::new(1)),
                (ElementId::new(0), ElementId::new(2)),
                (ElementId::new(1), ElementId::new(2)),
            ]
        );
    }

    #[test]
    fn audit_detects_malformed_antichains() {
        // Bypass the Name constructors via serde-free manual construction is
        // not possible (Name always normalizes), so exercise the check
        // through the well-formed path: it simply reports no violation.
        let ok = SetStamp::from_parts_unchecked(name("{0}"), name("{0, 1}"));
        let report = audit_frontier([(ElementId::new(0), &ok)]);
        report.assert_ok();
        assert_eq!(report.to_string(), "all invariants hold");
    }

    #[test]
    #[should_panic(expected = "invariant violations")]
    fn assert_ok_panics_on_violation() {
        let bad = SetStamp::from_parts_unchecked(name("{1}"), name("{0}"));
        audit_frontier([(ElementId::new(0), &bad)]).assert_ok();
    }

    #[test]
    fn invariants_hold_along_a_deterministic_run() {
        let mut config = Configuration::new(TreeStampMechanism::reducing());
        let mut rng_state = 0x9E37_79B9_7F4A_7C15u64;
        for _ in 0..200 {
            // xorshift-style deterministic pseudo-randomness, no external rng
            rng_state ^= rng_state << 13;
            rng_state ^= rng_state >> 7;
            rng_state ^= rng_state << 17;
            let ids = config.ids();
            let pick =
                |offset: u64| ids[(rng_state.wrapping_add(offset) % ids.len() as u64) as usize];
            let op = match rng_state % 3 {
                0 => Operation::Update(pick(0)),
                1 => Operation::Fork(pick(1)),
                _ => {
                    if ids.len() >= 2 {
                        let a = pick(0);
                        let mut b = pick(3);
                        if a == b {
                            b = *ids.iter().find(|&&x| x != a).expect("len >= 2");
                        }
                        Operation::Join(a, b)
                    } else {
                        Operation::Fork(pick(0))
                    }
                }
            };
            config.apply(op).expect("operation over live ids");
            audit_configuration(&config).assert_ok();
        }
    }

    #[test]
    fn invariants_hold_for_non_reducing_runs_too() {
        let mut config = Configuration::new(TreeStampMechanism::non_reducing());
        let root = config.ids()[0];
        let mut outcomes = vec![root];
        // fork a few times, update everything, join everything back
        for _ in 0..4 {
            let target = outcomes[0];
            match config.apply(Operation::Fork(target)).unwrap() {
                crate::config::Applied::Forked(a, b) => {
                    outcomes.remove(0);
                    outcomes.push(a);
                    outcomes.push(b);
                }
                _ => unreachable!(),
            }
            audit_configuration(&config).assert_ok();
        }
        let ids = config.ids();
        for id in ids {
            config.apply(Operation::Update(id)).unwrap();
            audit_configuration(&config).assert_ok();
        }
        while config.len() > 1 {
            let ids = config.ids();
            config.apply(Operation::Join(ids[0], ids[1])).unwrap();
            audit_configuration(&config).assert_ok();
        }
    }
}
