//! Multi-threaded store stress: the causal oracle must stay exact when
//! sessions, reads and gossip genuinely interleave on OS threads.
//!
//! Two layers of stress, both sized to stay within a few seconds:
//!
//! * the sim's concurrent driver (`StoreSimSpec::with_threads`) over
//!   reduced partition/heal and churn grids, for all three backends —
//!   the first time the PR 3/4 store stack runs against real parallel
//!   interleavings with the oracle watching every read;
//! * a raw writer/reader/gossip scope test with its own independent
//!   mini-oracle, so the check does not share code with the sim driver.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use vstamp_sim::store_sim::{run_store_sim, StoreSimSpec};
use vstamp_store::{Cluster, ClusterConfig, DynamicVvBackend, GcWatermarks, VstampBackend};

fn assert_exact(report: &vstamp_sim::store_sim::StoreSimReport, what: &str) {
    assert!(
        report.is_exact(),
        "{what} [{}]: lost={} false_conc={} resurrect={} converged={}",
        report.backend,
        report.lost_updates,
        report.false_concurrency,
        report.resurrections,
        report.converged
    );
}

#[test]
fn concurrent_partition_heal_is_exact_for_every_backend() {
    let spec = StoreSimSpec::partition_heal(6, 6, 2026).with_threads(4);
    assert_exact(&run_store_sim(VstampBackend::gc(), &spec), "partition-heal");
    assert_exact(&run_store_sim(VstampBackend::eager(), &spec), "partition-heal");
    assert_exact(&run_store_sim(DynamicVvBackend::new(), &spec), "partition-heal");
}

#[test]
fn concurrent_churn_is_exact_for_every_backend() {
    let spec = StoreSimSpec::churn(4, 8, 77).with_threads(3);
    assert_exact(&run_store_sim(VstampBackend::gc(), &spec), "churn");
    assert_exact(&run_store_sim(VstampBackend::eager(), &spec), "churn");
    assert_exact(&run_store_sim(DynamicVvBackend::new(), &spec), "churn");
}

#[test]
fn concurrent_runs_report_sessions_and_stay_exact_under_lazy_gc() {
    // Deferred collapse under parallel interleavings: the amortization must
    // not trade causal exactness when threads race the watermark.
    let spec = StoreSimSpec::churn(4, 6, 9).with_threads(4);
    let report = run_store_sim(VstampBackend::gc_with(GcWatermarks::lazy()), &spec);
    assert_exact(&report, "lazy-gc churn");
    assert_eq!(report.sessions, spec.rounds * spec.ops_per_round);
    assert_eq!(report.writes, report.sessions);
    assert_eq!(report.metadata_curve.len(), spec.rounds);
}

/// N writer threads + M reader threads + a gossip worker over a small key
/// space, against an oracle maintained independently of the sim driver:
/// per key, the set of `(id, reads-it-covered)` records under a mutex.
#[test]
fn raw_writer_reader_gossip_scope_is_causally_sound() {
    const KEYS: usize = 4;
    const WRITERS: usize = 3;
    const READERS: usize = 2;
    const WRITES_PER_WRITER: usize = 120;

    let cluster = Cluster::with_config(VstampBackend::gc(), ClusterConfig::new(3, 8));
    let keys: Vec<String> = (0..KEYS).map(|k| format!("stress-{k}")).collect();
    // Mini-oracle: per key, id → transitive causal closure.
    let oracle: Vec<Mutex<BTreeMap<u64, BTreeSet<u64>>>> =
        (0..KEYS).map(|_| Mutex::new(BTreeMap::new())).collect();
    let next_id = AtomicU64::new(1);
    let violations = AtomicUsize::new(0);
    let done = AtomicBool::new(false);

    let decode = |v: &[u8]| u64::from_le_bytes(v.try_into().expect("8-byte ids"));
    let check_read = |key_index: usize, ids: &[u64]| {
        let closures = oracle[key_index].lock().expect("oracle lock");
        for (i, a) in ids.iter().enumerate() {
            for b in &ids[i + 1..] {
                let covers =
                    |x: &u64, y: &u64| closures.get(x).is_some_and(|closure| closure.contains(y));
                if covers(a, b) || covers(b, a) {
                    violations.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    };

    std::thread::scope(|scope| {
        for w in 0..WRITERS {
            let (cluster, keys, oracle, next_id) = (&cluster, &keys, &oracle, &next_id);
            let check_read = &check_read;
            scope.spawn(move || {
                let mut state = 0x1234_5678_9abc_def0u64 ^ (w as u64) << 17;
                for _ in 0..WRITES_PER_WRITER {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    let key_index = (state >> 8) as usize % KEYS;
                    let replica = (state >> 24) as usize % 3;
                    let read = cluster.get(replica, &keys[key_index]);
                    let ids: Vec<u64> = read.iter_values().map(decode).collect();
                    check_read(key_index, &ids);
                    let id = next_id.fetch_add(1, Ordering::Relaxed);
                    {
                        // Record (with closure) before the put lands.
                        let mut closures = oracle[key_index].lock().expect("oracle lock");
                        let mut closure: BTreeSet<u64> = ids.iter().copied().collect();
                        for seen in &ids {
                            if let Some(upstream) = closures.get(seen) {
                                closure.extend(upstream.iter().copied());
                            }
                        }
                        closures.insert(id, closure);
                    }
                    cluster.put(
                        replica,
                        &keys[key_index],
                        id.to_le_bytes().to_vec(),
                        read.context(),
                    );
                }
            });
        }
        for r in 0..READERS {
            let (cluster, keys, done) = (&cluster, &keys, &done);
            let check_read = &check_read;
            scope.spawn(move || {
                let mut state = 0xfeed_face_cafe_beefu64 ^ (r as u64) << 29;
                while !done.load(Ordering::Acquire) {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    let key_index = (state >> 11) as usize % KEYS;
                    let replica = (state >> 31) as usize % 3;
                    let read = cluster.get(replica, &keys[key_index]);
                    let ids: Vec<u64> = read.iter_values().map(decode).collect();
                    check_read(key_index, &ids);
                    // Keep the reader preemptible on single-core hosts.
                    std::thread::yield_now();
                }
            });
        }
        // One gossip worker pulling pairs until the writers finish.
        {
            let (cluster, done) = (&cluster, &done);
            scope.spawn(move || {
                let mut round = 0usize;
                while !done.load(Ordering::Acquire) {
                    let a = round % 3;
                    let b = (round + 1) % 3;
                    cluster.anti_entropy(a, b);
                    cluster.anti_entropy(b, a);
                    round += 1;
                }
            });
        }
        // Watchdog: flip `done` once every writer id has been allocated,
        // so the readers and the gossip worker stop and the scope joins.
        scope.spawn(|| {
            // Busy-wait until every writer id has been allocated, then give
            // in-flight puts a moment and stop the readers and gossip.
            let total = (WRITERS * WRITES_PER_WRITER) as u64;
            while next_id.load(Ordering::Relaxed) <= total {
                std::thread::yield_now();
            }
            std::thread::sleep(std::time::Duration::from_millis(50));
            done.store(true, Ordering::Release);
        });
    });

    assert_eq!(violations.load(Ordering::Relaxed), 0, "false concurrency observed");

    // Settle: full sweeps until converged, then every maximal write must
    // survive somewhere (no lost updates at the top of the DAG).
    let mut converged = false;
    for _ in 0..10 {
        for a in 0..3 {
            for b in 0..3 {
                if a != b {
                    cluster.anti_entropy(a, b);
                }
            }
        }
        if cluster.converged() {
            converged = true;
            break;
        }
    }
    assert!(converged, "stress cluster failed to converge");
    for (key_index, key) in keys.iter().enumerate() {
        let closures = oracle[key_index].lock().expect("oracle lock");
        let all: Vec<u64> = closures.keys().copied().collect();
        let maximal: BTreeSet<u64> = all
            .iter()
            .copied()
            .filter(|id| !all.iter().any(|other| closures[other].contains(id)))
            .collect();
        let got: BTreeSet<u64> = cluster.get(0, key).iter_values().map(decode).collect();
        for id in &maximal {
            assert!(got.contains(id), "lost update {id} on {key}");
        }
        for id in &got {
            assert!(maximal.contains(id), "resurrected {id} on {key}");
        }
    }
}
