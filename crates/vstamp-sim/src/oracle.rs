//! The causal-history oracle: cross-checks any mechanism against the
//! global-view specification of Section 2 over a whole trace.
//!
//! Experiment E6 (the executable version of Proposition 5.1 / Corollary 5.2)
//! replays a trace twice — once against the mechanism under test and once
//! against [`CausalMechanism`] — and compares every pairwise relation of
//! every intermediate frontier.

use vstamp_core::causal::CausalMechanism;
use vstamp_core::{Configuration, ElementId, Mechanism, Operation, Relation, Trace};

/// One disagreement between a mechanism and the causal-history oracle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Disagreement {
    /// Index of the operation after which the disagreement was observed.
    pub step: usize,
    /// The pair of elements compared.
    pub pair: (ElementId, ElementId),
    /// What causal histories say.
    pub expected: Relation,
    /// What the mechanism under test says.
    pub actual: Relation,
}

/// The outcome of checking one mechanism against the oracle over one trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AgreementReport {
    /// Name of the mechanism that was checked.
    pub mechanism: &'static str,
    /// Number of operations replayed.
    pub operations: usize,
    /// Number of pairwise comparisons performed.
    pub comparisons: usize,
    /// Every disagreement found (empty for a correct mechanism).
    pub disagreements: Vec<Disagreement>,
}

impl AgreementReport {
    /// Returns `true` when the mechanism agreed with the oracle on every
    /// comparison.
    #[must_use]
    pub fn is_exact(&self) -> bool {
        self.disagreements.is_empty()
    }

    /// Fraction of comparisons on which the mechanism agreed with the
    /// oracle, in `[0, 1]`.
    #[must_use]
    pub fn agreement_ratio(&self) -> f64 {
        if self.comparisons == 0 {
            return 1.0;
        }
        1.0 - self.disagreements.len() as f64 / self.comparisons as f64
    }
}

/// Replays `trace` against both `mechanism` and the causal-history oracle,
/// comparing every pairwise relation after every operation.
pub fn check_against_oracle<M: Mechanism>(mechanism: M, trace: &Trace) -> AgreementReport {
    let mut subject = Configuration::new(mechanism);
    let mut oracle = Configuration::new(CausalMechanism::new());
    let name = subject.mechanism().mechanism_name();
    let mut comparisons = 0;
    let mut disagreements = Vec::new();

    for (step, op) in trace.iter().enumerate() {
        subject.apply(*op).expect("trace replays against the subject");
        oracle.apply(*op).expect("trace replays against the oracle");
        debug_assert_eq!(subject.ids(), oracle.ids());
        for (a, b, expected) in oracle.pairwise_relations() {
            comparisons += 1;
            let actual = subject.relation(a, b).expect("same element ids");
            if actual != expected {
                disagreements.push(Disagreement { step, pair: (a, b), expected, actual });
            }
        }
    }

    AgreementReport { mechanism: name, operations: trace.len(), comparisons, disagreements }
}

/// Convenience: checks that joining the whole final frontier back into one
/// element leaves an element dominating every element of the original
/// frontier (a sanity property used by the scenario binaries).
///
/// Note: this compares the merged element against *stale* elements, which is
/// only meaningful for mechanisms whose comparisons stay valid outside a
/// frontier (version vectors, ITC, non-reducing stamps, causal histories).
/// The reducing version-stamp mechanism deliberately discards exactly that
/// information (Section 1.2 of the paper), so it is not a candidate here.
pub fn merged_frontier_dominates<M: Mechanism>(mechanism: M, trace: &Trace) -> bool {
    let mut config = Configuration::new(mechanism);
    config.apply_trace(trace).expect("trace replays");
    let snapshot: Vec<_> = config.iter().map(|(_, e)| e.clone()).collect();
    while config.len() > 1 {
        let ids = config.ids();
        config.apply(Operation::Join(ids[0], ids[1])).expect("join of live elements");
    }
    let merged_id = config.ids()[0];
    let merged = config.get(merged_id).expect("single element").clone();
    let mechanism_ref = config.mechanism();
    snapshot.iter().all(|element| mechanism_ref.relation(&merged, element).includes_right())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{generate, OperationMix, WorkloadSpec};
    use vstamp_baselines::{DottedMechanism, FixedVersionVectorMechanism, VectorClockMechanism};
    use vstamp_core::{StampMechanism, TreeStampMechanism, VersionStampMechanism};
    use vstamp_itc::ItcMechanism;

    fn sample_trace(seed: u64) -> Trace {
        generate(&WorkloadSpec::new(150, 8, seed).with_mix(OperationMix::churn_heavy()))
    }

    #[test]
    fn stamps_agree_exactly_with_the_oracle() {
        for seed in 0..4 {
            let trace = sample_trace(seed);
            let report = check_against_oracle(VersionStampMechanism::reducing(), &trace);
            assert!(report.is_exact(), "disagreements: {:?}", report.disagreements);
            assert_eq!(report.mechanism, "version-stamps");
            assert!(check_against_oracle(VersionStampMechanism::frontier_gc(), &trace).is_exact());
            assert!(check_against_oracle(TreeStampMechanism::reducing(), &trace).is_exact());
            assert_eq!(report.operations, trace.len());
            assert!(report.comparisons > 0);
            assert_eq!(report.agreement_ratio(), 1.0);
        }
    }

    #[test]
    fn non_reducing_stamps_and_baselines_agree_exactly() {
        // Update-heavy keeps the non-reducing identities small enough to
        // replay (they grow exponentially with sync cycles, see ROADMAP).
        let trace = generate(&WorkloadSpec::new(100, 8, 9).with_mix(OperationMix::update_heavy()));
        assert!(check_against_oracle(VersionStampMechanism::non_reducing(), &trace).is_exact());
        assert!(check_against_oracle(TreeStampMechanism::non_reducing(), &trace).is_exact());
        assert!(check_against_oracle(StampMechanism::<vstamp_core::Name>::reducing(), &trace)
            .is_exact());
        assert!(check_against_oracle(VersionStampMechanism::deferred(4), &trace).is_exact());
        assert!(check_against_oracle(FixedVersionVectorMechanism::new(), &trace).is_exact());
        assert!(check_against_oracle(VectorClockMechanism::new(), &trace).is_exact());
        assert!(check_against_oracle(DottedMechanism::new(), &trace).is_exact());
        assert!(check_against_oracle(ItcMechanism::new(), &trace).is_exact());
    }

    #[test]
    fn a_broken_mechanism_is_caught() {
        /// A deliberately wrong mechanism: it never records updates, so it
        /// reports Equal where the oracle sees domination.
        #[derive(Debug, Clone, Default)]
        struct Amnesiac;
        impl Mechanism for Amnesiac {
            type Element = ();
            fn mechanism_name(&self) -> &'static str {
                "amnesiac"
            }
            fn initial(&mut self) -> Self::Element {}
            fn update(&mut self, _: &Self::Element) -> Self::Element {}
            fn fork(&mut self, _: &Self::Element) -> (Self::Element, Self::Element) {
                ((), ())
            }
            fn join(&mut self, _: &Self::Element, _: &Self::Element) -> Self::Element {}
            fn relation(&self, _: &Self::Element, _: &Self::Element) -> Relation {
                Relation::Equal
            }
            fn size_bits(&self, _: &Self::Element) -> usize {
                0
            }
        }

        let trace = sample_trace(3);
        let report = check_against_oracle(Amnesiac, &trace);
        assert!(!report.is_exact());
        assert!(report.agreement_ratio() < 1.0);
        let first = &report.disagreements[0];
        assert_ne!(first.expected, first.actual);
        assert!(first.step < trace.len());
    }

    #[test]
    fn merged_frontier_dominates_for_stamps_and_itc() {
        let trace = generate(&WorkloadSpec::new(100, 8, 5).with_mix(OperationMix::update_heavy()));
        assert!(merged_frontier_dominates(VersionStampMechanism::non_reducing(), &trace));
        assert!(merged_frontier_dominates(ItcMechanism::new(), &trace));
        assert!(merged_frontier_dominates(FixedVersionVectorMechanism::new(), &trace));
        assert!(merged_frontier_dominates(CausalMechanism::new(), &trace));
    }

    #[test]
    fn empty_trace_report() {
        let report = check_against_oracle(VersionStampMechanism::reducing(), &Trace::new());
        assert!(report.is_exact());
        assert_eq!(report.comparisons, 0);
        assert_eq!(report.agreement_ratio(), 1.0);
    }
}
