//! Space and shape metrics collected while replaying traces — the data
//! behind experiments E7 (space growth), E9 (simplification effectiveness)
//! and E10 (ITC comparison).

use core::fmt;

use vstamp_core::{Configuration, Mechanism, NameLike, Stamp, StampMechanism, Trace};

/// Space statistics of one mechanism over one trace.
#[derive(Debug, Clone, PartialEq)]
pub struct SpaceReport {
    /// Name of the mechanism measured.
    pub mechanism: &'static str,
    /// Number of operations replayed.
    pub operations: usize,
    /// Maximum frontier width observed.
    pub max_frontier: usize,
    /// Mean element size over all frontier elements of all steps, in bits.
    pub mean_element_bits: f64,
    /// Largest single element observed, in bits.
    pub max_element_bits: usize,
    /// Total size of the final frontier, in bits.
    pub final_frontier_bits: usize,
    /// Mean element size in the final frontier, in bits.
    pub final_mean_element_bits: f64,
}

impl fmt::Display for SpaceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<28} ops={:<6} max_frontier={:<4} mean_bits={:>9.1} max_bits={:>7} final_mean_bits={:>9.1}",
            self.mechanism,
            self.operations,
            self.max_frontier,
            self.mean_element_bits,
            self.max_element_bits,
            self.final_mean_element_bits
        )
    }
}

/// Replays `trace` against `mechanism`, sampling the size of every frontier
/// element after every operation.
pub fn measure_space<M: Mechanism>(mechanism: M, trace: &Trace) -> SpaceReport {
    let mut config = Configuration::new(mechanism);
    let name = config.mechanism().mechanism_name();
    let mut samples: u64 = 0;
    let mut total_bits: u64 = 0;
    let mut max_element_bits = 0usize;
    let mut max_frontier = config.len();

    let sample = |config: &Configuration<M>,
                  samples: &mut u64,
                  total_bits: &mut u64,
                  max_element_bits: &mut usize,
                  max_frontier: &mut usize| {
        *max_frontier = (*max_frontier).max(config.len());
        for (_, element) in config.iter() {
            let bits = config.mechanism().size_bits(element);
            *samples += 1;
            *total_bits += bits as u64;
            *max_element_bits = (*max_element_bits).max(bits);
        }
    };

    sample(&config, &mut samples, &mut total_bits, &mut max_element_bits, &mut max_frontier);
    for op in trace {
        config.apply(*op).expect("trace replays cleanly");
        sample(&config, &mut samples, &mut total_bits, &mut max_element_bits, &mut max_frontier);
    }

    let final_frontier_bits = config.total_size_bits();
    let final_len = config.len().max(1);
    SpaceReport {
        mechanism: name,
        operations: trace.len(),
        max_frontier,
        mean_element_bits: if samples == 0 { 0.0 } else { total_bits as f64 / samples as f64 },
        max_element_bits,
        final_frontier_bits,
        final_mean_element_bits: final_frontier_bits as f64 / final_len as f64,
    }
}

/// Identity-fragmentation statistics of one stamp policy over one trace —
/// the data behind the `bench_gc_json` report and the ROADMAP
/// fragmentation-wall measurements.
///
/// "Identity strings" counts the strings of the *id* component only: that
/// is the quantity the Section-6 rule and the frontier GC act on, and the
/// one that explodes (10⁵ strings on a 230-op partition/heal trace under
/// eager reduction).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FragmentationReport {
    /// Name of the mechanism measured.
    pub mechanism: &'static str,
    /// Number of operations replayed.
    pub operations: usize,
    /// Peak total id strings across the frontier, over all steps.
    pub peak_frontier_id_strings: usize,
    /// Total id strings across the final frontier.
    pub final_frontier_id_strings: usize,
    /// Largest id (in strings) of any single element at any step.
    pub peak_element_id_strings: usize,
    /// Sampling stride of `curve` (every `stride` operations, plus the
    /// final step).
    pub stride: usize,
    /// Sampled total-frontier-id-strings curve.
    pub curve: Vec<usize>,
}

/// Replays `trace` against a stamp mechanism (any representation, any
/// reduction policy), recording the identity-fragmentation curve: the total
/// number of id strings across the frontier, sampled every `stride`
/// operations.
pub fn measure_fragmentation<N, P>(
    mechanism: StampMechanism<N, P>,
    trace: &Trace,
    stride: usize,
) -> FragmentationReport
where
    N: NameLike,
    StampMechanism<N, P>: Mechanism<Element = Stamp<N>>,
{
    let stride = stride.max(1);
    let mut config = Configuration::new(mechanism);
    let name = config.mechanism().mechanism_name();
    let mut peak_frontier = 0usize;
    let mut peak_element = 0usize;
    let mut final_total = 0usize;
    let mut curve = Vec::new();
    for (step, op) in trace.iter().enumerate() {
        config.apply(*op).expect("trace replays cleanly");
        let mut total = 0usize;
        for (_, stamp) in config.iter() {
            let strings = stamp.id_name().string_count();
            total += strings;
            peak_element = peak_element.max(strings);
        }
        peak_frontier = peak_frontier.max(total);
        final_total = total;
        if step % stride == 0 || step + 1 == trace.len() {
            curve.push(total);
        }
    }
    FragmentationReport {
        mechanism: name,
        operations: trace.len(),
        peak_frontier_id_strings: peak_frontier,
        final_frontier_id_strings: final_total,
        peak_element_id_strings: peak_element,
        stride,
        curve,
    }
}

/// A labelled comparison table of several mechanisms over the same trace.
#[derive(Debug, Clone, Default)]
pub struct ComparisonTable {
    rows: Vec<SpaceReport>,
}

impl ComparisonTable {
    /// An empty table.
    #[must_use]
    pub fn new() -> Self {
        ComparisonTable::default()
    }

    /// Adds the measurement of one mechanism.
    pub fn push(&mut self, report: SpaceReport) {
        self.rows.push(report);
    }

    /// The measured rows, in insertion order.
    #[must_use]
    pub fn rows(&self) -> &[SpaceReport] {
        &self.rows
    }

    /// The row for a mechanism name, if present.
    #[must_use]
    pub fn row(&self, mechanism: &str) -> Option<&SpaceReport> {
        self.rows.iter().find(|r| r.mechanism == mechanism)
    }
}

impl fmt::Display for ComparisonTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for row in &self.rows {
            writeln!(f, "{row}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{generate, OperationMix, WorkloadSpec};
    use vstamp_baselines::{DynamicVersionVectorMechanism, FixedVersionVectorMechanism};
    use vstamp_core::TreeStampMechanism;
    use vstamp_itc::ItcMechanism;

    #[test]
    fn measure_space_reports_sensible_numbers() {
        let trace = generate(&WorkloadSpec::new(200, 8, 1).with_mix(OperationMix::balanced()));
        let report = measure_space(TreeStampMechanism::reducing(), &trace);
        assert_eq!(report.operations, 200);
        assert!(report.max_frontier >= 1 && report.max_frontier <= 9);
        assert!(report.mean_element_bits > 0.0);
        assert!(report.max_element_bits as f64 >= report.mean_element_bits);
        assert!(report.final_mean_element_bits >= 0.0);
        assert!(report.to_string().contains("version-stamps"));
    }

    #[test]
    fn reducing_stamps_are_never_larger_than_non_reducing() {
        // Sync-heavy mixes are where simplification matters most — and also
        // where *non-reducing* identities explode exponentially, so the
        // traces stay short to keep the non-reducing replay feasible.
        for seed in 0..2 {
            let trace =
                generate(&WorkloadSpec::new(40, 6, seed).with_mix(OperationMix::sync_heavy()));
            let reducing = measure_space(TreeStampMechanism::reducing(), &trace);
            let non_reducing = measure_space(TreeStampMechanism::non_reducing(), &trace);
            assert!(
                reducing.mean_element_bits <= non_reducing.mean_element_bits + 1e-9,
                "seed {seed}: reducing {} > non-reducing {}",
                reducing.mean_element_bits,
                non_reducing.mean_element_bits
            );
            assert!(reducing.max_element_bits <= non_reducing.max_element_bits);
        }
    }

    #[test]
    fn stamps_beat_dynamic_version_vectors_under_churn() {
        // The headline qualitative claim of the evaluation: under dynamic
        // replica populations the per-incarnation identifiers of dynamic
        // version vectors accumulate, while version-stamp identities adapt
        // to the frontier.
        // 600 operations: long enough for dynamic version vectors to
        // accumulate per-incarnation entries, short enough that stamp
        // identities have not hit a pathological fragmentation burst (at
        // ~800 churn operations some seeds do — see ROADMAP).
        let trace = generate(&WorkloadSpec::new(600, 8, 13).with_mix(OperationMix::churn_heavy()));
        let stamps = measure_space(TreeStampMechanism::reducing(), &trace);
        let dynamic = measure_space(DynamicVersionVectorMechanism::new(), &trace);
        assert!(
            stamps.final_mean_element_bits < dynamic.final_mean_element_bits,
            "stamps {} bits vs dynamic version vectors {} bits",
            stamps.final_mean_element_bits,
            dynamic.final_mean_element_bits
        );
    }

    #[test]
    fn fragmentation_report_tracks_gc_vs_eager() {
        use vstamp_core::VersionStampMechanism;
        let trace = generate(&WorkloadSpec::new(160, 6, 13).with_mix(OperationMix::churn_heavy()));
        let eager = measure_fragmentation(VersionStampMechanism::reducing(), &trace, 10);
        let gc = measure_fragmentation(VersionStampMechanism::frontier_gc(), &trace, 10);
        assert_eq!(eager.operations, 160);
        assert_eq!(eager.mechanism, "version-stamps");
        assert_eq!(gc.mechanism, "version-stamps-gc");
        assert!(!eager.curve.is_empty());
        assert_eq!(eager.curve.len(), gc.curve.len());
        assert_eq!(*eager.curve.last().unwrap(), eager.final_frontier_id_strings);
        assert!(eager.peak_frontier_id_strings >= eager.final_frontier_id_strings);
        assert!(eager.peak_element_id_strings <= eager.peak_frontier_id_strings);
        // GC never fragments more than eager reduction, step for step.
        for (g, e) in gc.curve.iter().zip(&eager.curve) {
            assert!(g <= e, "GC curve above eager: {g} > {e}");
        }
        assert!(gc.peak_frontier_id_strings <= eager.peak_frontier_id_strings);
    }

    #[test]
    fn comparison_table_collects_rows() {
        let trace = generate(&WorkloadSpec::new(100, 6, 2));
        let mut table = ComparisonTable::new();
        table.push(measure_space(vstamp_core::VersionStampMechanism::reducing(), &trace));
        table.push(measure_space(FixedVersionVectorMechanism::new(), &trace));
        table.push(measure_space(ItcMechanism::new(), &trace));
        assert_eq!(table.rows().len(), 3);
        assert!(table.row("version-stamps").is_some());
        assert!(table.row("interval-tree-clocks").is_some());
        assert!(table.row("nonexistent").is_none());
        assert_eq!(table.to_string().lines().count(), 3);
    }
}
