//! Socket-level nemesis: deterministic fault injection for real TCP
//! clusters.
//!
//! Every node's *advertised* address points at a [`Proxy`] owned by the
//! harness; inter-node traffic therefore crosses a proxy that parses the
//! length-prefixed codec frames and misbehaves on purpose — dropping,
//! delaying and duplicating individual frames, or black-holing a node's
//! inbound side entirely (a directed partition). Clients talk to the
//! nodes' real listeners and bypass the nemesis, so the causal oracle
//! observes the system as a user would.
//!
//! Determinism: the fault *plan* (which node is partitioned or crashed,
//! when, for how long) and every per-frame dice roll derive from one
//! seed via splitmix64. Socket scheduling itself remains real — the
//! nemesis makes fault *injection* reproducible, not thread interleaving.
//!
//! Crash/restart is not a proxy concern: the harness SIGKILLs the node
//! process and later starts a fresh one that joins as a *new* member
//! behind a new proxy, which is exactly what decentralized creation
//! promises to make cheap.

use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

use parking_lot::Mutex;

/// Per-frame misbehaviour rates, in permille (so configs stay integral
/// and seed-stable).
#[derive(Debug, Clone, Copy)]
pub struct NemesisConfig {
    /// Chance a frame is silently dropped.
    pub drop_per_mille: u16,
    /// Chance a frame is forwarded twice.
    pub duplicate_per_mille: u16,
    /// Chance a frame (and everything queued behind it) is delayed.
    pub delay_per_mille: u16,
    /// Upper bound on an injected delay.
    pub max_delay: Duration,
}

impl NemesisConfig {
    /// A nemesis that faithfully forwards everything (control runs).
    #[must_use]
    pub fn faithful() -> Self {
        NemesisConfig {
            drop_per_mille: 0,
            duplicate_per_mille: 0,
            delay_per_mille: 0,
            max_delay: Duration::ZERO,
        }
    }

    /// The default faulty profile used by the harness.
    #[must_use]
    pub fn faulty() -> Self {
        NemesisConfig {
            drop_per_mille: 20,
            duplicate_per_mille: 10,
            delay_per_mille: 30,
            max_delay: Duration::from_millis(80),
        }
    }
}

/// One scheduled fault in a [`FaultPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEvent {
    /// Black-hole the node's inbound proxy for `duration` starting at
    /// `at` (relative to the start of the fault phase). Peers stop being
    /// able to pull from the node; the node itself keeps pulling, so the
    /// failure is a *directed* cut — and, because its outbound requests
    /// keep feeding peer heartbeats, a partitioned node is never
    /// mistaken for a dead one.
    Partition {
        /// Index of the partitioned node.
        node: usize,
        /// Offset from the start of the fault phase.
        at: Duration,
        /// How long the inbound side stays black-holed.
        duration: Duration,
    },
    /// SIGKILL the node's process at `at`, wait `downtime`, then start a
    /// fresh process that joins as a new member. The killed incarnation
    /// must end up evicted with its identity retired.
    CrashRestart {
        /// Index of the crashed node.
        node: usize,
        /// Offset from the start of the fault phase.
        at: Duration,
        /// Gap between the kill and the replacement's join.
        downtime: Duration,
    },
}

/// The seeded fault schedule for one harness run.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Events ordered by their `at` offset.
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// Derives the schedule from a seed: one directed partition and one
    /// crash-restart, hitting two *different* non-bootstrap nodes, with
    /// seed-jittered times. `nodes` must be at least 3 so the bootstrap
    /// (index 0) is never the victim.
    #[must_use]
    pub fn generate(seed: u64, nodes: usize) -> FaultPlan {
        assert!(nodes >= 3, "fault plan needs a bootstrap plus two victims");
        let mut rng = Dice::new(seed ^ 0xFEED_FACE_CAFE_BEEF);
        let victims = nodes - 1;
        let partitioned = 1 + (rng.roll(victims as u64) as usize);
        // A different victim for the crash, chosen among the rest.
        let mut crashed = 1 + (rng.roll((victims - 1) as u64) as usize);
        if crashed >= partitioned {
            crashed += 1;
        }
        let partition_at = Duration::from_millis(200 + rng.roll(300));
        let partition_for = Duration::from_millis(600 + rng.roll(500));
        let crash_at = partition_at + partition_for + Duration::from_millis(700 + rng.roll(300));
        let downtime = Duration::from_millis(800 + rng.roll(400));
        FaultPlan {
            events: vec![
                FaultEvent::Partition {
                    node: partitioned,
                    at: partition_at,
                    duration: partition_for,
                },
                FaultEvent::CrashRestart { node: crashed, at: crash_at, downtime },
            ],
        }
    }
}

/// Seeded splitmix64 dice.
#[derive(Debug, Clone)]
struct Dice {
    state: u64,
}

impl Dice {
    fn new(seed: u64) -> Self {
        Dice { state: seed }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn roll(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        self.next() % bound
    }

    fn chance(&mut self, per_mille: u16) -> bool {
        self.roll(1000) < u64::from(per_mille)
    }
}

/// A frame-level TCP proxy in front of one node's listener.
#[derive(Debug)]
pub struct Proxy {
    listen_addr: SocketAddr,
    target: Arc<Mutex<Option<String>>>,
    blocked: Arc<AtomicBool>,
    shutdown: Arc<AtomicBool>,
    accept_thread: Mutex<Option<JoinHandle<()>>>,
}

impl Proxy {
    /// Binds the proxy's public listener (the node's advertised address)
    /// and starts accepting. The forwarding target is set later, once
    /// the node process reports its real listener via
    /// [`Proxy::set_target`]; until then connections are dropped.
    ///
    /// # Errors
    ///
    /// Fails if the listener cannot bind.
    pub fn start(config: NemesisConfig, seed: u64) -> io::Result<Proxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let listen_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let target = Arc::new(Mutex::new(None));
        let blocked = Arc::new(AtomicBool::new(false));
        let shutdown = Arc::new(AtomicBool::new(false));
        let thread = {
            let target = Arc::clone(&target);
            let blocked = Arc::clone(&blocked);
            let shutdown = Arc::clone(&shutdown);
            thread::spawn(move || accept_loop(listener, target, blocked, shutdown, config, seed))
        };
        Ok(Proxy {
            listen_addr,
            target,
            blocked,
            shutdown,
            accept_thread: Mutex::new(Some(thread)),
        })
    }

    /// The address peers should advertise and dial.
    #[must_use]
    pub fn listen_addr(&self) -> String {
        self.listen_addr.to_string()
    }

    /// Points the proxy at the node's real listener (also used after a
    /// crash-restart when the replacement process reuses the proxy).
    pub fn set_target(&self, addr: impl Into<String>) {
        *self.target.lock() = Some(addr.into());
    }

    /// Black-holes (or heals) the node's inbound side. Existing
    /// connections are torn down within one frame poll; new ones are
    /// accepted and immediately dropped, like a host behind a stateful
    /// firewall.
    pub fn set_blocked(&self, blocked: bool) {
        self.blocked.store(blocked, Ordering::SeqCst);
    }

    /// Stops the proxy; in-flight pump threads unwind on their next poll.
    pub fn stop(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept_thread.lock().take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Proxy {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(
    listener: TcpListener,
    target: Arc<Mutex<Option<String>>>,
    blocked: Arc<AtomicBool>,
    shutdown: Arc<AtomicBool>,
    config: NemesisConfig,
    seed: u64,
) {
    let mut connection_seq = 0u64;
    while !shutdown.load(Ordering::SeqCst) {
        let (client, _) = match listener.accept() {
            Ok(accepted) => accepted,
            Err(error)
                if error.kind() == io::ErrorKind::WouldBlock
                    || error.kind() == io::ErrorKind::TimedOut =>
            {
                thread::sleep(Duration::from_millis(5));
                continue;
            }
            Err(_) => {
                thread::sleep(Duration::from_millis(20));
                continue;
            }
        };
        connection_seq += 1;
        if blocked.load(Ordering::SeqCst) {
            let _ = client.shutdown(Shutdown::Both);
            continue;
        }
        let Some(addr) = target.lock().clone() else {
            let _ = client.shutdown(Shutdown::Both);
            continue;
        };
        let Ok(server) = TcpStream::connect(&addr) else {
            let _ = client.shutdown(Shutdown::Both);
            continue;
        };
        let _ = client.set_nodelay(true);
        let _ = server.set_nodelay(true);
        for (index, (from, to)) in
            [(client.try_clone(), server.try_clone()), (Ok(server), Ok(client))]
                .into_iter()
                .enumerate()
        {
            let (Ok(from), Ok(to)) = (from, to) else { break };
            let blocked = Arc::clone(&blocked);
            let shutdown = Arc::clone(&shutdown);
            let dice =
                Dice::new(seed ^ connection_seq.wrapping_mul(0xD1B5_4A32_D192_ED03) ^ index as u64);
            thread::spawn(move || pump(from, to, dice, config, blocked, shutdown));
        }
    }
}

/// Forwards length-prefixed frames one direction, rolling the dice per
/// frame. Any I/O error or a partition tears the connection down — the
/// transport layer on both sides is built to reconnect.
fn pump(
    mut from: TcpStream,
    mut to: TcpStream,
    mut dice: Dice,
    config: NemesisConfig,
    blocked: Arc<AtomicBool>,
    shutdown: Arc<AtomicBool>,
) {
    let _ = from.set_read_timeout(Some(Duration::from_millis(100)));
    let mut prefix = [0u8; 4];
    'frames: loop {
        if shutdown.load(Ordering::SeqCst) || blocked.load(Ordering::SeqCst) {
            break;
        }
        let mut read = 0;
        while read < prefix.len() {
            match from.read(&mut prefix[read..]) {
                Ok(0) => break 'frames,
                Ok(n) => read += n,
                Err(error)
                    if error.kind() == io::ErrorKind::WouldBlock
                        || error.kind() == io::ErrorKind::TimedOut =>
                {
                    if shutdown.load(Ordering::SeqCst) || blocked.load(Ordering::SeqCst) {
                        break 'frames;
                    }
                }
                Err(_) => break 'frames,
            }
        }
        let len = u32::from_le_bytes(prefix) as usize;
        let mut body = vec![0u8; len];
        if read_fully(&mut from, &mut body, &shutdown, &blocked).is_err() {
            break;
        }
        if dice.chance(config.drop_per_mille) {
            continue;
        }
        if dice.chance(config.delay_per_mille) {
            let delay = dice.roll(config.max_delay.as_millis().max(1) as u64);
            thread::sleep(Duration::from_millis(delay));
        }
        let copies = if dice.chance(config.duplicate_per_mille) { 2 } else { 1 };
        for _ in 0..copies {
            if to.write_all(&prefix).is_err() || to.write_all(&body).is_err() {
                break 'frames;
            }
        }
        let _ = to.flush();
    }
    let _ = from.shutdown(Shutdown::Both);
    let _ = to.shutdown(Shutdown::Both);
}

fn read_fully(
    from: &mut TcpStream,
    buffer: &mut [u8],
    shutdown: &AtomicBool,
    blocked: &AtomicBool,
) -> io::Result<()> {
    let mut read = 0;
    while read < buffer.len() {
        match from.read(&mut buffer[read..]) {
            Ok(0) => return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "peer closed")),
            Ok(n) => read += n,
            Err(error)
                if error.kind() == io::ErrorKind::WouldBlock
                    || error.kind() == io::ErrorKind::TimedOut =>
            {
                if shutdown.load(Ordering::SeqCst) || blocked.load(Ordering::SeqCst) {
                    return Err(io::Error::new(io::ErrorKind::Interrupted, "nemesis cut"));
                }
            }
            Err(error) => return Err(error),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_plan_is_deterministic_and_picks_distinct_victims() {
        let a = FaultPlan::generate(7, 3);
        let b = FaultPlan::generate(7, 3);
        assert_eq!(a.events, b.events);
        let FaultEvent::Partition { node: partitioned, .. } = a.events[0] else {
            panic!("first event must be the partition");
        };
        let FaultEvent::CrashRestart { node: crashed, .. } = a.events[1] else {
            panic!("second event must be the crash");
        };
        assert_ne!(partitioned, 0, "bootstrap is never a victim");
        assert_ne!(crashed, 0, "bootstrap is never a victim");
        assert_ne!(partitioned, crashed, "victims must differ");
        assert_ne!(
            FaultPlan::generate(8, 3).events,
            a.events,
            "different seeds give different plans"
        );
    }

    #[test]
    fn proxy_forwards_frames_and_partitions_on_demand() {
        let backend = TcpListener::bind("127.0.0.1:0").expect("bind backend");
        let backend_addr = backend.local_addr().expect("addr").to_string();
        thread::spawn(move || {
            for stream in backend.incoming().flatten() {
                thread::spawn(move || {
                    let mut stream = stream;
                    let mut buffer = [0u8; 9];
                    while stream.read_exact(&mut buffer).is_ok() {
                        // Echo the 5-byte frame (4-byte prefix + 1 payload).
                        if stream.write_all(&buffer).is_err() {
                            return;
                        }
                    }
                });
            }
        });
        let proxy = Proxy::start(NemesisConfig::faithful(), 5).expect("proxy");
        proxy.set_target(backend_addr);
        let mut client = TcpStream::connect(proxy.listen_addr()).expect("dial proxy");
        client.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");
        let frame = [5u8, 0, 0, 0, b'a', b'b', b'c', b'd', b'e'];
        client.write_all(&frame).expect("send");
        let mut echoed = [0u8; 9];
        client.read_exact(&mut echoed).expect("echo");
        assert_eq!(echoed, frame);

        proxy.set_blocked(true);
        client.set_read_timeout(Some(Duration::from_millis(500))).expect("timeout");
        let dead = client.write_all(&frame).is_err() || client.read_exact(&mut echoed).is_err();
        assert!(dead, "blocked proxy must sever the connection");
        proxy.stop();
    }
}
