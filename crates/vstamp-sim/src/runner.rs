//! Parallel experiment runner: measures several mechanisms over the same
//! trace, one thread per mechanism.
//!
//! The benchmark harness uses this to regenerate the comparison tables of
//! experiments E7/E9/E10 quickly; results are deterministic because each
//! mechanism replays the identical trace regardless of scheduling.

use std::sync::Arc;

use parking_lot::Mutex;

use vstamp_baselines::{
    DottedMechanism, DynamicVersionVectorMechanism, FixedVersionVectorMechanism,
    RandomIdCausalMechanism, VectorClockMechanism,
};
use vstamp_core::causal::CausalMechanism;
use vstamp_core::{SetStampMechanism, Trace, TreeStampMechanism, VersionStampMechanism};
use vstamp_itc::ItcMechanism;

use crate::metrics::{measure_space, ComparisonTable, SpaceReport};

/// The set of mechanisms a comparison run measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MechanismSet {
    /// Version stamps only (reducing and non-reducing) — the E9 ablation.
    StampsOnly,
    /// The three name representations (set / boxed tree / packed tags),
    /// all reducing — the `repr` ablation.
    Representations,
    /// The reduction-policy ablation over the default representation:
    /// eager (Section 6), deferred/batched, and frontier-evidence GC.
    /// (The non-reducing policy is omitted — use
    /// [`MechanismSet::StampsOnly`] on a capped trace for it.)
    Policies,
    /// Version stamps (eager and GC policies), every baseline, and ITC —
    /// the full E7/E10 table.
    All,
    /// [`MechanismSet::All`] without the non-reducing stamps, for long
    /// traces the non-reducing mechanism cannot replay (its identities
    /// grow exponentially with sync cycles).
    AllReducing,
}

fn measurement_jobs(
    set: MechanismSet,
    trace: &Trace,
) -> Vec<Box<dyn FnOnce() -> SpaceReport + Send>> {
    let mut jobs: Vec<Box<dyn FnOnce() -> SpaceReport + Send>> = Vec::new();
    let t = trace.clone();
    jobs.push(Box::new(move || measure_space(VersionStampMechanism::reducing(), &t)));
    match set {
        MechanismSet::StampsOnly => {
            let t = trace.clone();
            jobs.push(Box::new(move || measure_space(VersionStampMechanism::non_reducing(), &t)));
        }
        MechanismSet::Representations => {
            let t = trace.clone();
            jobs.push(Box::new(move || measure_space(SetStampMechanism::reducing(), &t)));
            let t = trace.clone();
            jobs.push(Box::new(move || measure_space(TreeStampMechanism::reducing(), &t)));
        }
        MechanismSet::Policies => {
            let t = trace.clone();
            jobs.push(Box::new(move || {
                measure_space(
                    vstamp_core::StampMechanism::<vstamp_core::PackedName, _>::with_policy(
                        vstamp_core::Deferred::default(),
                    ),
                    &t,
                )
            }));
            let t = trace.clone();
            jobs.push(Box::new(move || measure_space(VersionStampMechanism::frontier_gc(), &t)));
        }
        MechanismSet::All | MechanismSet::AllReducing => {
            if set == MechanismSet::All {
                let t = trace.clone();
                jobs.push(Box::new(move || {
                    measure_space(VersionStampMechanism::non_reducing(), &t)
                }));
            }
            let t = trace.clone();
            jobs.push(Box::new(move || measure_space(VersionStampMechanism::frontier_gc(), &t)));
            let t = trace.clone();
            jobs.push(Box::new(move || measure_space(FixedVersionVectorMechanism::new(), &t)));
            let t = trace.clone();
            jobs.push(Box::new(move || measure_space(DynamicVersionVectorMechanism::new(), &t)));
            let t = trace.clone();
            jobs.push(Box::new(move || measure_space(VectorClockMechanism::new(), &t)));
            let t = trace.clone();
            jobs.push(Box::new(move || measure_space(DottedMechanism::new(), &t)));
            let t = trace.clone();
            jobs.push(Box::new(move || measure_space(CausalMechanism::new(), &t)));
            let t = trace.clone();
            jobs.push(Box::new(move || measure_space(RandomIdCausalMechanism::with_seed(0), &t)));
            let t = trace.clone();
            jobs.push(Box::new(move || measure_space(ItcMechanism::new(), &t)));
        }
    }
    jobs
}

/// Measures the space behaviour of the selected mechanisms over `trace`,
/// running one worker thread per mechanism.
#[must_use]
pub fn compare_mechanisms(set: MechanismSet, trace: &Trace) -> ComparisonTable {
    let jobs = measurement_jobs(set, trace);
    let results: Arc<Mutex<Vec<(usize, SpaceReport)>>> = Arc::new(Mutex::new(Vec::new()));

    crossbeam::scope(|scope| {
        for (index, job) in jobs.into_iter().enumerate() {
            let results = Arc::clone(&results);
            scope.spawn(move |_| {
                let report = job();
                results.lock().push((index, report));
            });
        }
    })
    .expect("measurement workers do not panic");

    let mut collected = Arc::try_unwrap(results).expect("all workers joined").into_inner();
    collected.sort_by_key(|(index, _)| *index);
    let mut table = ComparisonTable::new();
    for (_, report) in collected {
        table.push(report);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{generate, OperationMix, WorkloadSpec};

    // Trace sizes here are deliberately modest: the non-reducing mechanism's
    // identities grow exponentially with the number of sync (join + fork)
    // cycles, so longer traces make its replay infeasible (see ROADMAP).

    #[test]
    fn stamps_only_comparison_has_two_rows() {
        let trace = generate(&WorkloadSpec::new(60, 5, 4).with_mix(OperationMix::update_heavy()));
        let table = compare_mechanisms(MechanismSet::StampsOnly, &trace);
        assert_eq!(table.rows().len(), 2);
        assert!(table.row("version-stamps").is_some());
        assert!(table.row("version-stamps-nonreducing").is_some());
    }

    #[test]
    fn representation_comparison_agrees_on_sizes() {
        let trace = generate(&WorkloadSpec::new(150, 8, 6).with_mix(OperationMix::churn_heavy()));
        let table = compare_mechanisms(MechanismSet::Representations, &trace);
        assert_eq!(table.rows().len(), 3);
        let packed = table.row("version-stamps").expect("packed (default) row");
        let set = table.row("version-stamps-set").expect("set row");
        let tree = table.row("version-stamps-tree").expect("tree row");
        // The three representations encode the same names, so every space
        // statistic must agree bit-for-bit.
        assert_eq!(packed.mean_element_bits, set.mean_element_bits);
        assert_eq!(packed.mean_element_bits, tree.mean_element_bits);
        assert_eq!(packed.max_element_bits, tree.max_element_bits);
        assert_eq!(packed.final_frontier_bits, tree.final_frontier_bits);
    }

    #[test]
    fn policy_comparison_keeps_gc_at_or_below_eager() {
        let trace = generate(&WorkloadSpec::new(120, 6, 6).with_mix(OperationMix::churn_heavy()));
        let table = compare_mechanisms(MechanismSet::Policies, &trace);
        assert_eq!(table.rows().len(), 3);
        let eager = table.row("version-stamps").expect("eager row");
        let deferred = table.row("version-stamps-deferred").expect("deferred row");
        let gc = table.row("version-stamps-gc").expect("gc row");
        assert!(gc.max_element_bits <= eager.max_element_bits);
        assert!(gc.final_frontier_bits <= eager.final_frontier_bits);
        // Deferred trades space for time: never smaller than eager.
        assert!(deferred.max_element_bits >= eager.max_element_bits);
    }

    #[test]
    fn full_comparison_covers_every_mechanism_and_is_deterministic() {
        let trace = generate(&WorkloadSpec::new(80, 6, 6).with_mix(OperationMix::update_heavy()));
        let table = compare_mechanisms(MechanismSet::All, &trace);
        assert_eq!(table.rows().len(), 10);
        for name in [
            "version-stamps",
            "version-stamps-nonreducing",
            "version-stamps-gc",
            "version-vectors",
            "dynamic-version-vectors",
            "vector-clocks",
            "dotted-version-vectors",
            "causal-histories",
            "random-id-causal-histories",
            "interval-tree-clocks",
        ] {
            assert!(table.row(name).is_some(), "missing row for {name}");
        }
        // deterministic: a second run produces identical numbers
        let again = compare_mechanisms(MechanismSet::All, &trace);
        for (a, b) in table.rows().iter().zip(again.rows()) {
            assert_eq!(a, b);
        }
    }
}
