//! Workload generators: seeded random fork/join/update traces.
//!
//! The paper motivates version stamps with mobile and ad-hoc deployments but
//! measures nothing; this module is the executable substitute. Every
//! generator takes an explicit seed and produces a [`Trace`] that can be
//! replayed against any [`Mechanism`](vstamp_core::Mechanism), so every
//! number in `EXPERIMENTS.md` is reproducible from a `(workload, seed)`
//! pair.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vstamp_core::{Configuration, ElementId, Operation, Relation, Trace};

/// How the generator chooses the next operation.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct OperationMix {
    /// Relative weight of `update` operations.
    pub update: u32,
    /// Relative weight of `fork` operations.
    pub fork: u32,
    /// Relative weight of `join` operations.
    pub join: u32,
}

impl OperationMix {
    /// A balanced mix (the default): equal weights.
    #[must_use]
    pub fn balanced() -> Self {
        OperationMix { update: 1, fork: 1, join: 1 }
    }

    /// An update-heavy mix modelling mostly-disconnected editing.
    #[must_use]
    pub fn update_heavy() -> Self {
        OperationMix { update: 6, fork: 1, join: 1 }
    }

    /// A churn-heavy mix: replicas are created and retired constantly.
    #[must_use]
    pub fn churn_heavy() -> Self {
        OperationMix { update: 1, fork: 3, join: 3 }
    }

    /// A synchronization-heavy mix: frequent joins immediately re-forked.
    #[must_use]
    pub fn sync_heavy() -> Self {
        OperationMix { update: 2, fork: 1, join: 4 }
    }

    fn total(&self) -> u32 {
        self.update + self.fork + self.join
    }
}

impl Default for OperationMix {
    fn default() -> Self {
        OperationMix::balanced()
    }
}

/// Parameters of a random workload.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct WorkloadSpec {
    /// Number of operations to generate.
    pub operations: usize,
    /// Operation mix.
    pub mix: OperationMix,
    /// Soft upper bound on the frontier width: once reached, forks are
    /// replaced by joins (and vice versa for the lower bound of one).
    pub max_replicas: usize,
    /// Random seed; reported alongside every result.
    pub seed: u64,
}

impl WorkloadSpec {
    /// A balanced workload with the given size and seed.
    #[must_use]
    pub fn new(operations: usize, max_replicas: usize, seed: u64) -> Self {
        WorkloadSpec { operations, mix: OperationMix::balanced(), max_replicas, seed }
    }

    /// Replaces the operation mix.
    #[must_use]
    pub fn with_mix(mut self, mix: OperationMix) -> Self {
        self.mix = mix;
        self
    }
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec::new(1000, 16, 0)
    }
}

/// Generates a random trace according to `spec`.
///
/// The generator drives a throw-away configuration (of the stateless
/// version-stamp mechanism) so that it always names live elements; the
/// returned trace replays cleanly against any mechanism because element
/// identifiers are allocated deterministically by
/// [`Configuration`].
#[must_use]
pub fn generate(spec: &WorkloadSpec) -> Trace {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut config = Configuration::new(vstamp_core::VersionStampMechanism::reducing());
    let mut trace = Trace::new();
    for _ in 0..spec.operations {
        let ids = config.ids();
        let width = ids.len();
        let op = next_operation(&mut rng, &ids, width, spec);
        config.apply(op).expect("generated operation targets live elements");
        trace.push(op);
    }
    trace
}

fn next_operation(
    rng: &mut StdRng,
    ids: &[ElementId],
    width: usize,
    spec: &WorkloadSpec,
) -> Operation {
    let mix = spec.mix;
    let pick = |rng: &mut StdRng| ids[rng.gen_range(0..ids.len())];
    let roll = rng.gen_range(0..mix.total().max(1));
    let wants_fork = roll >= mix.update && roll < mix.update + mix.fork;
    let wants_join = roll >= mix.update + mix.fork;
    if (wants_fork && width < spec.max_replicas.max(1)) || (wants_join && width < 2) {
        return Operation::Fork(pick(rng));
    }
    if wants_join || (wants_fork && width >= spec.max_replicas.max(1)) {
        if width < 2 {
            return Operation::Update(pick(rng));
        }
        let a = pick(rng);
        let mut b = pick(rng);
        while b == a {
            b = pick(rng);
        }
        return Operation::Join(a, b);
    }
    Operation::Update(pick(rng))
}

/// Generates the partition/heal workload of experiment E7: the replica
/// population is split into `islands` groups; within an epoch only replicas
/// of the same island synchronize (join + fork), and at the end of each
/// epoch two islands heal (merge). Updates happen everywhere throughout.
#[must_use]
pub fn generate_partition_heal(
    islands: usize,
    replicas_per_island: usize,
    epochs: usize,
    updates_per_epoch: usize,
    seed: u64,
) -> Trace {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut config = Configuration::new(vstamp_core::VersionStampMechanism::reducing());
    let mut trace = Trace::new();
    let apply = |config: &mut Configuration<vstamp_core::VersionStampMechanism>,
                 trace: &mut Trace,
                 op: Operation| {
        let applied = config.apply(op).expect("workload operations target live elements");
        trace.push(op);
        applied
    };

    // Build the initial population by forking the seed element.
    let target = (islands * replicas_per_island).max(1);
    let mut population: Vec<ElementId> = vec![config.ids()[0]];
    while population.len() < target {
        let victim = population.remove(rng.gen_range(0..population.len()));
        match apply(&mut config, &mut trace, Operation::Fork(victim)) {
            vstamp_core::Applied::Forked(a, b) => {
                population.push(a);
                population.push(b);
            }
            _ => unreachable!("fork produces two elements"),
        }
    }

    // Assign replicas to islands round-robin.
    let mut island_members: Vec<Vec<ElementId>> = vec![Vec::new(); islands.max(1)];
    for (i, id) in population.into_iter().enumerate() {
        island_members[i % islands.max(1)].push(id);
    }

    for epoch in 0..epochs {
        // Local updates and intra-island synchronizations.
        for _ in 0..updates_per_epoch {
            let island = rng.gen_range(0..island_members.len());
            let members = &mut island_members[island];
            if members.is_empty() {
                continue;
            }
            if members.len() >= 2 && rng.gen_bool(0.4) {
                // intra-island synchronization: join then fork
                let a = members.remove(rng.gen_range(0..members.len()));
                let b = members.remove(rng.gen_range(0..members.len()));
                let joined = match apply(&mut config, &mut trace, Operation::Join(a, b)) {
                    vstamp_core::Applied::Joined(id) => id,
                    _ => unreachable!(),
                };
                match apply(&mut config, &mut trace, Operation::Fork(joined)) {
                    vstamp_core::Applied::Forked(x, y) => {
                        members.push(x);
                        members.push(y);
                    }
                    _ => unreachable!(),
                }
            } else {
                let slot = rng.gen_range(0..members.len());
                let target = members[slot];
                match apply(&mut config, &mut trace, Operation::Update(target)) {
                    vstamp_core::Applied::Updated(id) => members[slot] = id,
                    _ => unreachable!(),
                }
            }
        }
        // Heal: merge two islands (if more than one remains).
        if island_members.len() > 1 && epoch + 1 < epochs {
            let absorbed = island_members.remove(rng.gen_range(0..island_members.len()));
            let receiver = rng.gen_range(0..island_members.len());
            island_members[receiver].extend(absorbed);
        }
    }
    trace
}

/// A trace that encodes the fixed three-replica run of Figure 1 / Figure 3
/// under fork-and-join dynamics, generalized to `replicas` lines and
/// `rounds` of (update, propagate-to-neighbour) steps.
#[must_use]
pub fn generate_fixed_population(replicas: usize, rounds: usize, seed: u64) -> Trace {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut config = Configuration::new(vstamp_core::VersionStampMechanism::reducing());
    let mut trace = Trace::new();
    let apply = |config: &mut Configuration<vstamp_core::VersionStampMechanism>,
                 trace: &mut Trace,
                 op: Operation| {
        let applied = config.apply(op).expect("live elements");
        trace.push(op);
        applied
    };

    let mut lines: Vec<ElementId> = vec![config.ids()[0]];
    while lines.len() < replicas.max(1) {
        let victim = lines.remove(0);
        match apply(&mut config, &mut trace, Operation::Fork(victim)) {
            vstamp_core::Applied::Forked(a, b) => {
                lines.push(a);
                lines.push(b);
            }
            _ => unreachable!(),
        }
    }

    for _ in 0..rounds {
        // one replica updates…
        let writer = rng.gen_range(0..lines.len());
        match apply(&mut config, &mut trace, Operation::Update(lines[writer])) {
            vstamp_core::Applied::Updated(id) => lines[writer] = id,
            _ => unreachable!(),
        }
        // …and synchronizes with a neighbour, like the arrows of Figure 1.
        let reader = (writer + 1) % lines.len();
        if reader != writer {
            let joined =
                match apply(&mut config, &mut trace, Operation::Join(lines[writer], lines[reader]))
                {
                    vstamp_core::Applied::Joined(id) => id,
                    _ => unreachable!(),
                };
            match apply(&mut config, &mut trace, Operation::Fork(joined)) {
                vstamp_core::Applied::Forked(a, b) => {
                    lines[writer] = a;
                    lines[reader] = b;
                }
                _ => unreachable!(),
            }
        }
    }
    trace
}

/// Frontier width statistics observed while replaying a trace; used to
/// sanity-check generated workloads.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FrontierStats {
    /// Maximum number of coexisting replicas.
    pub max_width: usize,
    /// Final number of coexisting replicas.
    pub final_width: usize,
    /// Number of pairwise-concurrent pairs in the final frontier.
    pub final_conflicts: usize,
}

/// Replays a trace against the version-stamp mechanism and reports frontier
/// statistics.
#[must_use]
pub fn frontier_stats(trace: &Trace) -> FrontierStats {
    let mut config = Configuration::new(vstamp_core::VersionStampMechanism::reducing());
    let mut max_width = config.len();
    for op in trace {
        config.apply(*op).expect("trace replays cleanly");
        max_width = max_width.max(config.len());
    }
    let final_conflicts = config
        .pairwise_relations()
        .into_iter()
        .filter(|(_, _, r)| *r == Relation::Concurrent)
        .count();
    FrontierStats { max_width, final_width: config.len(), final_conflicts }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vstamp_core::TreeStampMechanism;

    #[test]
    fn operation_mix_presets() {
        assert_eq!(OperationMix::balanced().total(), 3);
        assert_eq!(OperationMix::default(), OperationMix::balanced());
        assert!(OperationMix::update_heavy().update > OperationMix::update_heavy().fork);
        assert!(OperationMix::churn_heavy().fork > OperationMix::churn_heavy().update);
        assert!(OperationMix::sync_heavy().join > OperationMix::sync_heavy().fork);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let spec = WorkloadSpec::new(200, 8, 42);
        assert_eq!(generate(&spec), generate(&spec));
        let other = WorkloadSpec::new(200, 8, 43);
        assert_ne!(generate(&spec), generate(&other));
    }

    #[test]
    fn generated_traces_replay_against_any_mechanism() {
        let spec = WorkloadSpec::new(300, 10, 7).with_mix(OperationMix::churn_heavy());
        let trace = generate(&spec);
        assert_eq!(trace.len(), 300);
        let mut stamps = Configuration::new(TreeStampMechanism::reducing());
        stamps.apply_trace(&trace).expect("replay against stamps");
        let mut causal = Configuration::new(vstamp_core::CausalMechanism::new());
        causal.apply_trace(&trace).expect("replay against causal histories");
        assert_eq!(stamps.ids(), causal.ids());
    }

    #[test]
    fn max_replicas_bounds_frontier_width() {
        for max in [2usize, 4, 9] {
            let spec = WorkloadSpec::new(400, max, 11).with_mix(OperationMix::churn_heavy());
            let stats = frontier_stats(&generate(&spec));
            assert!(
                stats.max_width <= max + 1,
                "frontier width {} exceeded bound {max}",
                stats.max_width
            );
            assert!(stats.final_width >= 1);
        }
    }

    #[test]
    fn update_heavy_workloads_update_most_of_the_time() {
        let spec = WorkloadSpec::new(500, 8, 3).with_mix(OperationMix::update_heavy());
        let (updates, forks, joins) = generate(&spec).op_counts();
        assert!(updates > forks + joins, "expected mostly updates, got {updates}/{forks}/{joins}");
    }

    #[test]
    fn partition_heal_trace_replays_and_grows_population() {
        let trace = generate_partition_heal(4, 3, 5, 20, 9);
        assert!(!trace.is_empty());
        let stats = frontier_stats(&trace);
        assert!(stats.max_width >= 12, "population should reach 12, got {}", stats.max_width);
        // replays against causal histories too
        let mut causal = Configuration::new(vstamp_core::CausalMechanism::new());
        causal.apply_trace(&trace).expect("replay");
    }

    #[test]
    fn fixed_population_trace_keeps_constant_width() {
        let trace = generate_fixed_population(3, 10, 5);
        let stats = frontier_stats(&trace);
        assert_eq!(stats.final_width, 3);
        // width only exceeds 3 transiently by one during a sync's fork
        assert!(stats.max_width <= 4);
        let deterministic = generate_fixed_population(3, 10, 5);
        assert_eq!(trace, deterministic);
    }

    #[test]
    fn workload_spec_defaults() {
        let spec = WorkloadSpec::default();
        assert_eq!(spec.operations, 1000);
        assert_eq!(spec.max_replicas, 16);
        assert_eq!(spec.mix, OperationMix::balanced());
    }
}
