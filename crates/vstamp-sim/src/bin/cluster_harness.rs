//! Multi-process loopback cluster harness under a socket-level nemesis.
//!
//! The parent spawns N copies of *this binary* with `--node`, each an OS
//! process running one `vstamp_store::Node` on real loopback TCP. Every
//! node advertises a nemesis [`Proxy`] address, so all inter-node gossip
//! crosses a fault-injecting proxy (frame drops / delays / duplicates,
//! plus a directed partition), while the harness's own client sessions go
//! to the nodes' real listeners — the oracle sees the cluster as a user
//! would.
//!
//! Faults come from a seeded [`FaultPlan`]: one directed partition of a
//! non-bootstrap node, and one crash (SIGKILL) of a different node whose
//! replacement later joins as a *new* member by forking a live stamp.
//! The run gates on the session-level causal oracle (zero lost acked
//! writes, zero false concurrency, zero resurrections, converged final
//! reads) and on the membership lifecycle (the killed incarnation is
//! evicted everywhere, at least one survivor retires its identity
//! subtree, and that survivor's membership stamp shrinks below its peak).
//! `--control` runs the same workload fault-free and additionally gates
//! on *no* suspicion: zero evictions and zero retirements.
//!
//! Usage: `cluster_harness [--seed N] [--smoke] [--control]`. Exit code 0
//! iff every gate passes; a JSON report goes to stdout either way.

use std::collections::{BTreeMap, BTreeSet};
use std::io::{self, BufRead, BufReader, Write};
use std::process::{Child, ChildStdin, Command, Stdio};
use std::time::{Duration, Instant};

use vstamp_sim::nemesis::{FaultEvent, FaultPlan, NemesisConfig, Proxy};
use vstamp_sim::{decode_id, encode_id, KeyOracle};
use vstamp_store::{
    MemberStatus, Node, NodeClient, NodeConfig, NodeStatus, PhiConfig, TransportConfig,
};

/// Writes to a doomed node stop this long before the SIGKILL so its
/// acked writes replicate out (the store is in-memory; an ack only
/// outlives the process once gossip has shipped the write).
const DRAIN: Duration = Duration::from_millis(600);

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--node") {
        child_main(&args);
    } else {
        let code = parent_main(&args);
        std::process::exit(code);
    }
}

fn arg_value(args: &[String], name: &str) -> Option<String> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).cloned()
}

fn arg_parse<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> T {
    arg_value(args, name).and_then(|v| v.parse().ok()).unwrap_or(default)
}

// ---------------------------------------------------------------------
// Child: one cluster node as an OS process.
// ---------------------------------------------------------------------

/// Runs a single node until the parent kills the process or closes our
/// stdin (EOF doubles as a graceful shutdown signal, so a crashed parent
/// never leaks node processes).
fn child_main(args: &[String]) {
    let advertise = arg_value(args, "--advertise").expect("--advertise is required");
    // Gossip stalls are heartbeat silence: a dropped frame blocks the
    // serial gossip loop for one io_timeout, so the transport must fail
    // fast (loopback replies arrive in microseconds) and the eviction
    // grace must dominate a worst-case run of consecutive stalls.
    let io_timeout = Duration::from_millis(arg_parse(args, "--io-ms", 250));
    let config = NodeConfig {
        advertise_addr: Some(advertise),
        gossip_interval: Duration::from_millis(arg_parse(args, "--gossip-ms", 25)),
        eviction_grace: Duration::from_millis(arg_parse(args, "--grace-ms", 1200)),
        transport: TransportConfig { connect_timeout: io_timeout, io_timeout },
        phi: PhiConfig { threshold: arg_parse(args, "--phi", 8.0), ..PhiConfig::default() },
        seed: arg_parse(args, "--seed", 1),
        ..NodeConfig::default()
    };
    let node = match arg_value(args, "--sponsor") {
        None => Node::bootstrap(config).expect("bootstrap node"),
        Some(sponsor) => Node::join(config, &sponsor).expect("join cluster"),
    };
    println!("LISTEN {}", node.local_addr());
    io::stdout().flush().expect("flush LISTEN line");
    let mut line = String::new();
    let _ = io::stdin().lock().read_line(&mut line);
    node.shutdown();
}

// ---------------------------------------------------------------------
// Parent: proxies, processes, workload, fault plan, gates.
// ---------------------------------------------------------------------

/// One node process plus the nemesis proxy it advertises.
struct NodeProc {
    proxy: Proxy,
    child: Child,
    /// Held open so the child sees EOF exactly when we drop it.
    _stdin: ChildStdin,
    /// The node's real listener — what harness clients dial.
    real_addr: String,
    /// The proxy address — the node's identity in the member table.
    advertised: String,
    alive: bool,
    writable: bool,
    peak_id_bits: usize,
}

impl NodeProc {
    fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
        self.alive = false;
        self.writable = false;
    }
}

struct Knobs {
    seed: u64,
    control: bool,
    smoke: bool,
    gossip_ms: u64,
    grace_ms: u64,
    io_ms: u64,
    phi: f64,
    keys: usize,
}

fn spawn_node(
    knobs: &Knobs,
    index: u64,
    sponsor: Option<&str>,
    nemesis: NemesisConfig,
) -> io::Result<NodeProc> {
    let proxy = Proxy::start(nemesis, knobs.seed ^ index.wrapping_mul(0x9E37_79B9))?;
    let advertised = proxy.listen_addr();
    let exe = std::env::current_exe()?;
    let mut command = Command::new(exe);
    command
        .arg("--node")
        .args(["--advertise", &advertised])
        .args(["--seed", &(knobs.seed.wrapping_add(index * 1000 + 7)).to_string()])
        .args(["--gossip-ms", &knobs.gossip_ms.to_string()])
        .args(["--grace-ms", &knobs.grace_ms.to_string()])
        .args(["--io-ms", &knobs.io_ms.to_string()])
        .args(["--phi", &knobs.phi.to_string()])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped());
    if let Some(sponsor) = sponsor {
        command.args(["--sponsor", sponsor]);
    }
    let mut child = command.spawn()?;
    let stdin = child.stdin.take().expect("child stdin piped");
    let stdout = child.stdout.take().expect("child stdout piped");
    let mut line = String::new();
    BufReader::new(stdout).read_line(&mut line)?;
    let real_addr =
        line.trim().strip_prefix("LISTEN ").map(str::to_owned).ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidData, "child did not report LISTEN")
        })?;
    proxy.set_target(&real_addr);
    Ok(NodeProc {
        proxy,
        child,
        _stdin: stdin,
        real_addr,
        advertised,
        alive: true,
        writable: true,
        peak_id_bits: 0,
    })
}

fn client(addr: &str, seed: u64) -> NodeClient {
    NodeClient::connect(addr, TransportConfig::default(), seed)
}

fn status_of(node: &NodeProc, seed: u64) -> Option<NodeStatus> {
    if !node.alive {
        return None;
    }
    client(&node.real_addr, seed).status().ok()
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Everything the oracle needs about the workload so far.
#[derive(Default)]
struct Workload {
    oracles: BTreeMap<String, KeyOracle>,
    recorded: BTreeSet<u64>,
    /// Ids whose put errored: possibly landed, never required to.
    ghosts: BTreeSet<u64>,
    next_id: u64,
    writes: usize,
    reads: usize,
    false_concurrency: usize,
    put_failures: usize,
}

impl Workload {
    /// One causal session at `addr`: read the key, gate the sibling set
    /// against the oracle, write a superseding value, record the ack.
    fn session(&mut self, addr: &str, key: &str, seed: u64) {
        let mut client = client(addr, seed);
        let Ok((values, context)) = client.get(key) else {
            return;
        };
        let read_ids: Vec<u64> = values.iter().map(|v| decode_id(v)).collect();
        let oracle = self.oracles.entry(key.to_owned()).or_default();
        self.false_concurrency += oracle.false_concurrency(&read_ids);
        self.reads += 1;
        self.next_id += 1;
        let id = self.next_id;
        match client.put(key, encode_id(id), context.as_ref()) {
            Ok(_) => {
                if std::env::var_os("HARNESS_TRACE").is_some() {
                    eprintln!("session {addr} {key} read {read_ids:?} wrote {id}");
                }
                oracle.record_write(id, &read_ids, false);
                self.recorded.insert(id);
                self.writes += 1;
            }
            Err(_) => {
                self.ghosts.insert(id);
                self.put_failures += 1;
            }
        }
    }
}

/// A pass/fail gate with a human-readable reason on failure.
struct Gate {
    name: &'static str,
    pass: bool,
    detail: String,
}

fn wait_for(deadline: Instant, mut check: impl FnMut() -> bool) -> bool {
    loop {
        if check() {
            return true;
        }
        if Instant::now() >= deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

fn parent_main(args: &[String]) -> i32 {
    let control = args.iter().any(|a| a == "--control");
    let smoke = args.iter().any(|a| a == "--smoke");
    let knobs = Knobs {
        seed: arg_parse(args, "--seed", 42),
        control,
        smoke,
        gossip_ms: 25,
        grace_ms: 1200,
        io_ms: 250,
        phi: 8.0,
        keys: if smoke || control { 4 } else { 6 },
    };
    let nemesis = if control { NemesisConfig::faithful() } else { NemesisConfig::faulty() };

    // --- Phase 1: bring up bootstrap + two joiners, root every key. ---
    let mut nodes = Vec::new();
    let bootstrap = spawn_node(&knobs, 0, None, nemesis).expect("spawn bootstrap");
    let sponsor_addr = bootstrap.advertised.clone();
    nodes.push(bootstrap);
    for index in 1..3u64 {
        nodes.push(spawn_node(&knobs, index, Some(&sponsor_addr), nemesis).expect("spawn joiner"));
    }
    let keys: Vec<String> = (0..knobs.keys).map(|k| format!("key-{k}")).collect();
    let mut workload = Workload::default();
    let mut rng = knobs.seed ^ 0xC0FF_EE00;
    // Root each key exactly once, before any fault can run: concurrent
    // first-touch of the same key from two nodes is the one creation
    // race the membership design documents as out of scope.
    for (k, key) in keys.iter().enumerate() {
        workload.session(&nodes[k % nodes.len()].real_addr, key, splitmix(&mut rng));
    }
    assert_eq!(workload.put_failures, 0, "key rooting must succeed");
    let setup_deadline = Instant::now() + Duration::from_secs(30);
    let settled = wait_for(setup_deadline, || {
        let statuses: Vec<NodeStatus> =
            nodes.iter().filter_map(|n| status_of(n, splitmix(&mut rng))).collect();
        statuses.len() == nodes.len()
            && statuses.iter().all(|s| s.active_members == 3)
            && statuses.windows(2).all(|p| p[0].digest_root == p[1].digest_root)
    });
    assert!(settled, "cluster failed to converge during fault-free setup");

    // --- Phase 2: workload under the seeded fault plan. ---
    let mut gates: Vec<Gate> = Vec::new();
    let mut dead_advertised = None;
    if control {
        run_workload_only(&mut workload, &nodes, &keys, &mut rng);
    } else {
        dead_advertised =
            run_fault_phase(&knobs, &mut nodes, &keys, &mut workload, &mut rng, nemesis);
    }

    // --- Phase 3: heal, quiesce, verify. ---
    let deadline = Instant::now() + Duration::from_secs(60);
    verify_membership(&knobs, &nodes, dead_advertised.as_deref(), deadline, &mut gates, &mut rng);
    verify_oracle(&nodes, &keys, &workload, deadline, &mut gates, &mut rng);

    let pass = gates.iter().all(|g| g.pass);
    print_report(&knobs, &workload, &gates, pass);
    for node in &mut nodes {
        node.kill();
        node.proxy.stop();
    }
    i32::from(!pass)
}

/// Fault-free workload window (control runs).
fn run_workload_only(workload: &mut Workload, nodes: &[NodeProc], keys: &[String], rng: &mut u64) {
    let until = Instant::now() + Duration::from_millis(2500);
    while Instant::now() < until {
        let node = &nodes[(splitmix(rng) % nodes.len() as u64) as usize];
        let key = &keys[(splitmix(rng) % keys.len() as u64) as usize];
        workload.session(&node.real_addr, key, splitmix(rng));
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Executes the seeded plan while the workload keeps writing to nodes
/// that are up (and, for the doomed node, not yet draining). Returns the
/// advertised address of the killed incarnation.
fn run_fault_phase(
    knobs: &Knobs,
    nodes: &mut Vec<NodeProc>,
    keys: &[String],
    workload: &mut Workload,
    rng: &mut u64,
    nemesis: NemesisConfig,
) -> Option<String> {
    let plan = FaultPlan::generate(knobs.seed, 3);
    eprintln!("fault plan: {:?}", plan.events);
    // Expand the plan into an ordered action timeline.
    enum Action {
        Block(usize),
        Unblock(usize),
        Drain(usize),
        Kill(usize),
        Restart,
    }
    let mut timeline: Vec<(Duration, Action)> = Vec::new();
    let mut dead_advertised = None;
    let mut last = Duration::ZERO;
    for event in &plan.events {
        match *event {
            FaultEvent::Partition { node, at, duration } => {
                timeline.push((at, Action::Block(node)));
                timeline.push((at + duration, Action::Unblock(node)));
                last = last.max(at + duration);
            }
            FaultEvent::CrashRestart { node, at, downtime } => {
                timeline.push((at.saturating_sub(DRAIN), Action::Drain(node)));
                timeline.push((at, Action::Kill(node)));
                timeline.push((at + downtime, Action::Restart));
                last = last.max(at + downtime);
            }
        }
    }
    timeline.sort_by_key(|(at, _)| *at);
    // Keep the workload running for a while after the last fault so the
    // healed cluster sees fresh causal traffic.
    let phase_end = last + Duration::from_millis(1500);
    let start = Instant::now();
    let mut next = 0;
    let sponsor = nodes[0].advertised.clone();
    while start.elapsed() < phase_end || next < timeline.len() {
        let now = start.elapsed();
        while next < timeline.len() && timeline[next].0 <= now {
            match timeline[next].1 {
                Action::Block(i) => nodes[i].proxy.set_blocked(true),
                Action::Unblock(i) => nodes[i].proxy.set_blocked(false),
                Action::Drain(i) => nodes[i].writable = false,
                Action::Kill(i) => {
                    dead_advertised = Some(nodes[i].advertised.clone());
                    nodes[i].kill();
                }
                Action::Restart => {
                    // The replacement is a brand-new member behind a
                    // fresh proxy; it only serves convergence checks, so
                    // it never writes (a re-rooting write before it has
                    // pulled the keys would race the key's first touch).
                    let mut replacement = spawn_node(knobs, 3, Some(&sponsor), nemesis)
                        .expect("respawn crashed node");
                    replacement.writable = false;
                    nodes.push(replacement);
                }
            }
            next += 1;
        }
        let writable: Vec<usize> =
            (0..nodes.len()).filter(|&i| nodes[i].alive && nodes[i].writable).collect();
        if !writable.is_empty() {
            let node = &nodes[writable[(splitmix(rng) % writable.len() as u64) as usize]];
            let key = &keys[(splitmix(rng) % keys.len() as u64) as usize];
            workload.session(&node.real_addr, key, splitmix(rng));
        }
        // Track each node's peak membership-stamp size for the shrink gate.
        for node in nodes.iter_mut() {
            if let Some(status) = status_of(node, splitmix(rng)) {
                node.peak_id_bits = node.peak_id_bits.max(status.id_bits);
            }
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    dead_advertised
}

/// Membership gates: eviction everywhere, identity retirement, stamp
/// shrink (faulty runs) or zero suspicion (control runs).
fn verify_membership(
    knobs: &Knobs,
    nodes: &[NodeProc],
    dead_advertised: Option<&str>,
    deadline: Instant,
    gates: &mut Vec<Gate>,
    rng: &mut u64,
) {
    if knobs.control {
        let mut detail = String::new();
        let clean = nodes.iter().all(|node| {
            status_of(node, splitmix(rng)).is_some_and(|s| {
                let ok = s.evicted_members == 0 && s.retirements == 0;
                if !ok {
                    detail = format!(
                        "{} evicted={} retirements={}",
                        node.advertised, s.evicted_members, s.retirements
                    );
                }
                ok
            })
        });
        gates.push(Gate { name: "no_false_suspicion", pass: clean, detail });
        return;
    }
    let dead = dead_advertised.expect("faulty runs always kill one node");
    let evicted_everywhere = wait_for(deadline, || {
        nodes.iter().filter(|n| n.alive).all(|node| {
            status_of(node, splitmix(rng)).is_some_and(|s| {
                s.table.entry(dead).is_some_and(|e| e.status == MemberStatus::Evicted)
            })
        })
    });
    gates.push(Gate {
        name: "eviction_observed",
        pass: evicted_everywhere,
        detail: format!("killed incarnation {dead} marked Evicted on every live node"),
    });
    let retired = wait_for(deadline, || {
        nodes
            .iter()
            .filter(|n| n.alive)
            .filter_map(|n| status_of(n, splitmix(rng)))
            .map(|s| s.retirements)
            .sum::<usize>()
            >= 1
    });
    gates.push(Gate {
        name: "retirement_observed",
        pass: retired,
        detail: "at least one survivor ran identity retirement".to_owned(),
    });
    // The survivor that reabsorbed the evicted subtree must end below its
    // own peak stamp size — ids shrink back after churn.
    let mut shrink_detail = String::new();
    let shrunk = wait_for(deadline, || {
        nodes.iter().filter(|n| n.alive && n.peak_id_bits > 0).any(|node| {
            status_of(node, splitmix(rng)).is_some_and(|s| {
                if s.id_bits < node.peak_id_bits {
                    shrink_detail = format!(
                        "{}: {} bits, peak {}",
                        node.advertised, s.id_bits, node.peak_id_bits
                    );
                    true
                } else {
                    false
                }
            })
        })
    });
    gates.push(Gate { name: "identity_shrunk", pass: shrunk, detail: shrink_detail });
}

/// Convergence + causal-oracle gates over the final reads.
fn verify_oracle(
    nodes: &[NodeProc],
    keys: &[String],
    workload: &Workload,
    deadline: Instant,
    gates: &mut Vec<Gate>,
    rng: &mut u64,
) {
    let converged = wait_for(deadline, || {
        let statuses: Vec<NodeStatus> =
            nodes.iter().filter(|n| n.alive).filter_map(|n| status_of(n, splitmix(rng))).collect();
        statuses.len() == nodes.iter().filter(|n| n.alive).count()
            && statuses.windows(2).all(|p| p[0].digest_root == p[1].digest_root)
    });
    if !converged {
        for node in nodes.iter().filter(|n| n.alive) {
            match status_of(node, splitmix(rng)) {
                Some(s) => eprintln!(
                    "diverged: {} root={:016x} active={} evicted={} retirements={}",
                    node.advertised,
                    s.digest_root,
                    s.active_members,
                    s.evicted_members,
                    s.retirements
                ),
                None => eprintln!("diverged: {} unreachable", node.advertised),
            }
            for key in keys {
                let ids = client(&node.real_addr, splitmix(rng))
                    .get(key)
                    .map(|(values, _)| values.iter().map(|v| decode_id(v)).collect::<Vec<_>>());
                eprintln!("  {} {key} -> {ids:?}", node.advertised);
            }
        }
    }
    gates.push(Gate {
        name: "converged",
        pass: converged,
        detail: "all live nodes reached one digest root after heal".to_owned(),
    });

    let mut lost = 0usize;
    let mut resurrections = 0usize;
    let mut divergent_keys = 0usize;
    let mut final_false_concurrency = 0usize;
    for key in keys {
        let mut per_node: Vec<BTreeSet<u64>> = Vec::new();
        for node in nodes.iter().filter(|n| n.alive) {
            match client(&node.real_addr, splitmix(rng)).get(key) {
                Ok((values, _)) => {
                    per_node.push(values.iter().map(|v| decode_id(v)).collect());
                }
                Err(_) => divergent_keys += 1,
            }
        }
        if per_node.windows(2).any(|p| p[0] != p[1]) {
            divergent_keys += 1;
            continue;
        }
        let Some(live) = per_node.first() else { continue };
        let oracle = &workload.oracles[key];
        let live_vec: Vec<u64> = live.iter().copied().collect();
        final_false_concurrency += oracle.false_concurrency(&live_vec);
        let expected = oracle.expected_live();
        for id in expected.difference(live) {
            eprintln!("lost acked write: {key} id {id}; expected {expected:?}, live {live:?}");
        }
        lost += expected.difference(live).count();
        resurrections += live
            .iter()
            .filter(|id| !workload.recorded.contains(id) && !workload.ghosts.contains(id))
            .count();
    }
    gates.push(Gate {
        name: "no_divergent_keys",
        pass: divergent_keys == 0,
        detail: format!("{divergent_keys} keys differed across live nodes"),
    });
    gates.push(Gate {
        name: "no_lost_acked_writes",
        pass: lost == 0,
        detail: format!("{lost} acked maximal writes missing from final reads"),
    });
    gates.push(Gate {
        name: "no_resurrections",
        pass: resurrections == 0,
        detail: format!("{resurrections} never-written ids surfaced"),
    });
    gates.push(Gate {
        name: "no_false_concurrency",
        pass: workload.false_concurrency == 0 && final_false_concurrency == 0,
        detail: format!(
            "{} violations during run, {} in final reads",
            workload.false_concurrency, final_false_concurrency
        ),
    });
}

fn print_report(knobs: &Knobs, workload: &Workload, gates: &[Gate], pass: bool) {
    let mode = if knobs.control {
        "control"
    } else if knobs.smoke {
        "smoke"
    } else {
        "full"
    };
    let gate_json: Vec<String> = gates
        .iter()
        .map(|g| format!("{:?}:{{\"pass\":{},\"detail\":{:?}}}", g.name, g.pass, g.detail))
        .collect();
    println!(
        "{{\"mode\":{:?},\"seed\":{},\"writes\":{},\"reads\":{},\"put_failures\":{},\"gates\":{{{}}},\"pass\":{}}}",
        mode,
        knobs.seed,
        workload.writes,
        workload.reads,
        workload.put_failures,
        gate_json.join(","),
        pass
    );
}
