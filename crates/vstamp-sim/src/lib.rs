//! # vstamp-sim — replicated-system simulator and experiment substrate
//!
//! The paper motivates version stamps with mobile / ad-hoc deployments in
//! which replicas fork, update and merge under arbitrary partitions, but it
//! reports no measurements — its evaluation is the worked figures and the
//! proofs. This crate is the executable substitute for that deployment and
//! the substrate every experiment in the reproduction runs on:
//!
//! * [`workload`] — seeded random trace generators (balanced, update-heavy,
//!   churn-heavy, sync-heavy, partition/heal, fixed-population);
//! * [`scenario`] — the concrete traces of Figures 1–4, with labelled
//!   elements and expected relations;
//! * [`oracle`] — replay-and-compare against the causal-history
//!   specification (experiments E5/E6);
//! * [`metrics`] — per-element space accounting and identity-fragmentation
//!   curves over whole traces (experiments E7/E9/E10 and the identity-GC
//!   report);
//! * [`runner`] — a parallel comparison runner covering every mechanism in
//!   the workspace;
//! * [`store_sim`] — the `vstamp-store` scenario: N store replicas under
//!   partition/heal and churn, checked against a causal oracle built from
//!   the session structure (lost updates, false concurrency);
//! * [`nemesis`] — socket-level fault injection for the real-TCP cluster:
//!   frame-parsing proxies that drop/delay/duplicate frames or black-hole
//!   a node's inbound side, plus a seeded fault plan (used by the
//!   `cluster_harness` binary against multi-process clusters);
//! * [`viz`] — Graphviz (DOT) export of evolution DAGs, for rendering the
//!   reproduction's counterparts of the paper's figures.
//!
//! ```
//! use vstamp_sim::workload::{generate, WorkloadSpec};
//! use vstamp_sim::oracle::check_against_oracle;
//! use vstamp_core::VersionStampMechanism;
//!
//! let trace = generate(&WorkloadSpec::new(100, 8, 42));
//! let report = check_against_oracle(VersionStampMechanism::reducing(), &trace);
//! assert!(report.is_exact());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod metrics;
pub mod nemesis;
pub mod oracle;
pub mod runner;
pub mod scenario;
pub mod store_sim;
pub mod viz;
pub mod workload;

pub use metrics::{
    measure_fragmentation, measure_space, ComparisonTable, FragmentationReport, SpaceReport,
};
pub use nemesis::{FaultEvent, FaultPlan, NemesisConfig, Proxy};
pub use oracle::{check_against_oracle, AgreementReport, Disagreement};
pub use runner::{compare_mechanisms, MechanismSet};
pub use scenario::{figure1, figure2, figure3, figure4, stamp_walkthrough, Scenario};
pub use store_sim::{
    decode_id, encode_id, run_store_sim, KeyOracle, StoreSimReport, StoreSimSpec, WireReport,
};
pub use workload::{
    generate, generate_fixed_population, generate_partition_heal, OperationMix, WorkloadSpec,
};
