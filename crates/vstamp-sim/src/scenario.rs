//! The worked examples of the paper, as executable scenarios.
//!
//! Each figure of the paper is encoded as a concrete trace plus the values
//! the paper shows, so the benchmark harness can regenerate the figure and
//! `EXPERIMENTS.md` can record paper-vs-measured:
//!
//! * [`figure1`] — fixed version vectors tracking updates among three
//!   replicas A, B, C;
//! * [`figure2`] — the fork/join/update evolution with two possible
//!   frontiers (causal histories view);
//! * [`figure3`] — the encoding of a fixed number of replicas under
//!   fork-and-join dynamics;
//! * [`figure4`] — the same evolution as Figure 2 tracked with version
//!   stamps, including the simplification at the final join.

use vstamp_core::causal::CausalMechanism;
use vstamp_core::{
    Applied, Configuration, ElementId, Mechanism, Operation, Relation, Trace, VersionStamp,
    VersionStampMechanism,
};

use vstamp_baselines::FixedVersionVectorMechanism;

/// A replayable scenario: a named trace plus the identifiers of the named
/// elements of the figure (so reports can refer to "a₂", "c₃" etc.).
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Human-readable scenario name ("Figure 1", …).
    pub name: &'static str,
    /// The operations of the scenario, in order.
    pub trace: Trace,
    /// Named elements of the final frontier: `(label, element id)`.
    pub labels: Vec<(&'static str, ElementId)>,
}

impl Scenario {
    /// Replays the scenario against a mechanism, returning the final
    /// configuration.
    pub fn replay<M: Mechanism>(&self, mechanism: M) -> Configuration<M> {
        let mut config = Configuration::new(mechanism);
        config.apply_trace(&self.trace).expect("scenario traces are well formed");
        config
    }

    /// The element id associated with a label of the final frontier.
    ///
    /// # Panics
    ///
    /// Panics if the label is unknown; scenario labels are fixed constants.
    #[must_use]
    pub fn element(&self, label: &str) -> ElementId {
        self.labels
            .iter()
            .find(|(l, _)| *l == label)
            .map(|(_, id)| *id)
            .unwrap_or_else(|| panic!("unknown scenario label {label}"))
    }
}

/// Figure 1: three replicas A, B and C tracked by fixed version vectors.
///
/// The run: A updates; B pulls from A; C updates; C pulls from B (getting
/// A's update); A updates again. The final frontier has A = `[2,0,0]` and
/// B = C = `[1,0,1]`, mutually inconsistent with A — exactly the last
/// column of Figure 1.
#[must_use]
pub fn figure1() -> Scenario {
    let mut config = Configuration::new(VersionStampMechanism::reducing());
    let mut trace = Trace::new();
    let apply = |config: &mut Configuration<VersionStampMechanism>, trace: &mut Trace, op| {
        let applied = config.apply(op).expect("figure 1 operations are valid");
        trace.push(op);
        applied
    };

    // Create the three replica lines A, B, C from the initial element.
    let root = config.ids()[0];
    let (a, rest) = match apply(&mut config, &mut trace, Operation::Fork(root)) {
        Applied::Forked(a, rest) => (a, rest),
        _ => unreachable!(),
    };
    let (b, c) = match apply(&mut config, &mut trace, Operation::Fork(rest)) {
        Applied::Forked(b, c) => (b, c),
        _ => unreachable!(),
    };

    // A records its first update (A = [1,0,0]).
    let a = match apply(&mut config, &mut trace, Operation::Update(a)) {
        Applied::Updated(id) => id,
        _ => unreachable!(),
    };
    // B synchronizes with A (both now know [1,0,0]).
    let joined = match apply(&mut config, &mut trace, Operation::Join(a, b)) {
        Applied::Joined(id) => id,
        _ => unreachable!(),
    };
    let (a, b) = match apply(&mut config, &mut trace, Operation::Fork(joined)) {
        Applied::Forked(a, b) => (a, b),
        _ => unreachable!(),
    };
    // C records its update ([0,0,1]).
    let c = match apply(&mut config, &mut trace, Operation::Update(c)) {
        Applied::Updated(id) => id,
        _ => unreachable!(),
    };
    // C synchronizes with B ([1,0,1] on both).
    let joined = match apply(&mut config, &mut trace, Operation::Join(b, c)) {
        Applied::Joined(id) => id,
        _ => unreachable!(),
    };
    let (b, c) = match apply(&mut config, &mut trace, Operation::Fork(joined)) {
        Applied::Forked(b, c) => (b, c),
        _ => unreachable!(),
    };
    // A records a second update ([2,0,0]).
    let a = match apply(&mut config, &mut trace, Operation::Update(a)) {
        Applied::Updated(id) => id,
        _ => unreachable!(),
    };

    Scenario { name: "Figure 1", trace, labels: vec![("A", a), ("B", b), ("C", c)] }
}

/// Figure 2 / Figure 4: the fork/join/update evolution with elements
/// a₁ … g₁ and the final frontier `{d₁, (the join of e/f lineage), c₃}`.
///
/// The concrete run follows the arrows of Figure 2 (and the stamps of
/// Figure 4): `a₁` updates into `a₂`; `a₂` forks into `b₁` and `e₁`;
/// `b₁` forks into `d₁` and the element that joins `e`'s lineage; the `c`
/// lineage updates twice more; finally the middle elements join into `g₁`.
#[must_use]
pub fn figure2() -> Scenario {
    let mut config = Configuration::new(VersionStampMechanism::reducing());
    let mut trace = Trace::new();
    let apply = |config: &mut Configuration<VersionStampMechanism>, trace: &mut Trace, op| {
        let applied = config.apply(op).expect("figure 2 operations are valid");
        trace.push(op);
        applied
    };

    // a1 —update→ a2   (the paper's c lineage is the bottom row: a1 is also
    // labelled c1 in the bottom row; we follow the top half first).
    let a1 = config.ids()[0];
    // The bottom row: c1 —update→ c2 —update→ c3 happens on the same initial
    // element's sibling after the first fork, so fork first.
    let a2 = match apply(&mut config, &mut trace, Operation::Update(a1)) {
        Applied::Updated(id) => id,
        _ => unreachable!(),
    };
    // a2 forks into b1 (top) and e1 (middle).
    let (b1, e1) = match apply(&mut config, &mut trace, Operation::Fork(a2)) {
        Applied::Forked(x, y) => (x, y),
        _ => unreachable!(),
    };
    // b1 forks into d1 and the branch that will meet f1.
    let (d1, b2) = match apply(&mut config, &mut trace, Operation::Fork(b1)) {
        Applied::Forked(x, y) => (x, y),
        _ => unreachable!(),
    };
    // e1 updates into f1's predecessor and forks: one branch stays (f1), the
    // other is the c lineage that keeps updating (c2, c3 in the figure's
    // bottom row).
    let (f1, c1) = match apply(&mut config, &mut trace, Operation::Fork(e1)) {
        Applied::Forked(x, y) => (x, y),
        _ => unreachable!(),
    };
    let c2 = match apply(&mut config, &mut trace, Operation::Update(c1)) {
        Applied::Updated(id) => id,
        _ => unreachable!(),
    };
    let c3 = match apply(&mut config, &mut trace, Operation::Update(c2)) {
        Applied::Updated(id) => id,
        _ => unreachable!(),
    };
    // b2 and f1 join into g1.
    let g1 = match apply(&mut config, &mut trace, Operation::Join(b2, f1)) {
        Applied::Joined(id) => id,
        _ => unreachable!(),
    };

    Scenario { name: "Figure 2", trace, labels: vec![("d1", d1), ("g1", g1), ("c3", c3)] }
}

/// Figure 3: the fixed three-replica system of Figure 1 re-expressed under
/// fork-and-join dynamics. Returns the same trace as [`figure1`]; the
/// regeneration binary replays it against both the version-vector mechanism
/// and version stamps and checks the orderings coincide.
#[must_use]
pub fn figure3() -> Scenario {
    let mut scenario = figure1();
    scenario.name = "Figure 3";
    scenario
}

/// Figure 4: the evolution of Figure 2 tracked with version stamps. Returns
/// the same trace as [`figure2`]; the regeneration binary prints the stamps
/// step by step in the paper's `[update | id]` notation.
#[must_use]
pub fn figure4() -> Scenario {
    let mut scenario = figure2();
    scenario.name = "Figure 4";
    scenario
}

/// One row of a step-by-step stamp walkthrough: the operation applied and
/// the stamps of the frontier after it.
#[derive(Debug, Clone)]
pub struct WalkthroughStep {
    /// The operation applied at this step (`None` for the initial state).
    pub operation: Option<Operation>,
    /// The frontier after the operation: `(element, stamp)` pairs.
    pub frontier: Vec<(ElementId, VersionStamp)>,
}

/// Replays a scenario against version stamps, recording the whole frontier
/// after every operation — the data behind the Figure 4 regeneration.
#[must_use]
pub fn stamp_walkthrough(scenario: &Scenario) -> Vec<WalkthroughStep> {
    let mut config = Configuration::new(VersionStampMechanism::reducing());
    let mut steps = vec![WalkthroughStep {
        operation: None,
        frontier: config.iter().map(|(id, s)| (id, s.clone())).collect(),
    }];
    for op in &scenario.trace {
        config.apply(*op).expect("scenario traces are well formed");
        steps.push(WalkthroughStep {
            operation: Some(*op),
            frontier: config.iter().map(|(id, s)| (id, s.clone())).collect(),
        });
    }
    steps
}

/// The relations of the final frontier of Figure 1 as the paper presents
/// them, verified against any mechanism.
pub fn verify_figure1_relations<M: Mechanism>(mechanism: M) -> Result<(), String> {
    let scenario = figure1();
    let config = scenario.replay(mechanism);
    let a = scenario.element("A");
    let b = scenario.element("B");
    let c = scenario.element("C");
    let expect = |left: ElementId, right: ElementId, expected: Relation| -> Result<(), String> {
        let actual = config.relation(left, right).expect("labelled elements are live");
        if actual == expected {
            Ok(())
        } else {
            Err(format!("expected {left} vs {right} to be {expected}, got {actual}"))
        }
    };
    // B and C have both seen exactly A's first update and C's update.
    expect(b, c, Relation::Equal)?;
    // A has its own second update but has not seen C's update.
    expect(a, b, Relation::Concurrent)?;
    expect(a, c, Relation::Concurrent)?;
    Ok(())
}

/// The relations of the final frontier of Figure 2/4: `c₃` and `g₁` have
/// seen every update; `d₁` has only seen the first one.
pub fn verify_figure2_relations<M: Mechanism>(mechanism: M) -> Result<(), String> {
    let scenario = figure2();
    let config = scenario.replay(mechanism);
    let d1 = scenario.element("d1");
    let g1 = scenario.element("g1");
    let c3 = scenario.element("c3");
    let expect = |left: ElementId, right: ElementId, expected: Relation| -> Result<(), String> {
        let actual = config.relation(left, right).expect("labelled elements are live");
        if actual == expected {
            Ok(())
        } else {
            Err(format!("expected {left} vs {right} to be {expected}, got {actual}"))
        }
    };
    // d1 and g1 have both seen only the first update (g1's join added no new
    // updates), so they are equivalent; c3 has seen two more.
    expect(d1, g1, Relation::Equal)?;
    expect(d1, c3, Relation::Dominated)?;
    expect(g1, c3, Relation::Dominated)?;
    Ok(())
}

/// Convenience: replays Figure 1 against the classic version-vector
/// mechanism and returns the three vectors in A, B, C order (used by the
/// `figure1` regeneration binary to print the same columns as the paper).
#[must_use]
pub fn figure1_version_vectors() -> Vec<(String, String)> {
    let scenario = figure1();
    let config = scenario.replay(FixedVersionVectorMechanism::new());
    ["A", "B", "C"]
        .iter()
        .map(|label| {
            let id = scenario.element(label);
            let element = config.get(id).expect("labelled element");
            ((*label).to_owned(), element.vector.to_string())
        })
        .collect()
}

/// Convenience: the final causal histories of Figure 2, labelled.
#[must_use]
pub fn figure2_causal_histories() -> Vec<(String, String)> {
    let scenario = figure2();
    let config = scenario.replay(CausalMechanism::new());
    ["d1", "g1", "c3"]
        .iter()
        .map(|label| {
            let id = scenario.element(label);
            let element = config.get(id).expect("labelled element");
            ((*label).to_owned(), element.to_string())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vstamp_baselines::DynamicVersionVectorMechanism;
    use vstamp_core::TreeStampMechanism;
    use vstamp_itc::ItcMechanism;

    #[test]
    fn figure1_final_vectors_match_the_paper() {
        let vectors = figure1_version_vectors();
        let by_label: std::collections::BTreeMap<_, _> = vectors.into_iter().collect();
        // Final column of Figure 1: A = [2,0,0], B = C = [1,0,1].
        // Replica identifiers are allocated in creation order: A=r1? The
        // mapping of identifiers to columns is an artefact of allocation, so
        // check update totals instead of the exact labels.
        let a = &by_label["A"];
        let b = &by_label["B"];
        let c = &by_label["C"];
        assert_eq!(b, c, "B and C end with identical vectors");
        assert!(a.contains(":2"), "A has two updates of its own, got {a}");
        assert!(b.matches(":1").count() == 2, "B has seen two distinct updates, got {b}");
    }

    #[test]
    fn figure1_relations_hold_for_every_mechanism() {
        verify_figure1_relations(VersionStampMechanism::reducing()).unwrap();
        verify_figure1_relations(VersionStampMechanism::non_reducing()).unwrap();
        verify_figure1_relations(VersionStampMechanism::frontier_gc()).unwrap();
        verify_figure1_relations(TreeStampMechanism::reducing()).unwrap();
        verify_figure1_relations(FixedVersionVectorMechanism::new()).unwrap();
        verify_figure1_relations(DynamicVersionVectorMechanism::new()).unwrap();
        verify_figure1_relations(CausalMechanism::new()).unwrap();
        verify_figure1_relations(ItcMechanism::new()).unwrap();
    }

    #[test]
    fn figure2_relations_hold_for_every_mechanism() {
        verify_figure2_relations(VersionStampMechanism::reducing()).unwrap();
        verify_figure2_relations(VersionStampMechanism::non_reducing()).unwrap();
        verify_figure2_relations(VersionStampMechanism::frontier_gc()).unwrap();
        verify_figure2_relations(TreeStampMechanism::reducing()).unwrap();
        verify_figure2_relations(FixedVersionVectorMechanism::new()).unwrap();
        verify_figure2_relations(CausalMechanism::new()).unwrap();
        verify_figure2_relations(ItcMechanism::new()).unwrap();
    }

    #[test]
    fn figure2_causal_histories_have_expected_sizes() {
        let histories = figure2_causal_histories();
        let by_label: std::collections::BTreeMap<_, _> = histories.into_iter().collect();
        // d1 and g1 know only the first update; c3 knows all three.
        assert_eq!(by_label["d1"].matches('e').count(), 1);
        assert_eq!(by_label["g1"].matches('e').count(), 1);
        assert_eq!(by_label["c3"].matches('e').count(), 3);
    }

    #[test]
    fn figure3_and_figure4_share_traces_with_their_sources() {
        assert_eq!(figure3().trace, figure1().trace);
        assert_eq!(figure4().trace, figure2().trace);
        assert_eq!(figure3().name, "Figure 3");
        assert_eq!(figure4().name, "Figure 4");
    }

    #[test]
    fn figure4_walkthrough_records_every_frontier() {
        let scenario = figure4();
        let steps = stamp_walkthrough(&scenario);
        assert_eq!(steps.len(), scenario.trace.len() + 1);
        assert!(steps[0].operation.is_none());
        assert_eq!(steps[0].frontier.len(), 1);
        let last = steps.last().expect("non-empty walkthrough");
        assert!(matches!(last.operation, Some(Operation::Join(_, _))));
        for (_, stamp) in &last.frontier {
            assert!(stamp.is_reduced());
            stamp.validate().expect("reachable stamps are valid");
        }
        // The frontier of Figure 2's final configuration has three elements.
        assert_eq!(last.frontier.len(), 3);
    }

    #[test]
    fn joining_the_figure4_frontier_back_triggers_the_rewriting_rule() {
        // Continue the Figure 4 run: joining the whole frontier back into a
        // single element exercises the simplification of Section 6 and
        // recovers the seed identity {ε}.
        let scenario = figure4();
        let mut config = scenario.replay(VersionStampMechanism::reducing());
        let mut non_reducing = scenario.replay(VersionStampMechanism::non_reducing());
        while config.len() > 1 {
            let ids = config.ids();
            config.apply(Operation::Join(ids[0], ids[1])).unwrap();
            non_reducing.apply(Operation::Join(ids[0], ids[1])).unwrap();
        }
        let only = config.ids()[0];
        let reduced = config.get(only).unwrap();
        let plain = non_reducing.get(only).unwrap();
        assert!(reduced.is_seed_identity());
        assert!(!plain.is_seed_identity(), "non-reducing join keeps the split identity {plain}");
        assert!(reduced.bit_size() < plain.bit_size());
    }

    #[test]
    fn scenario_label_lookup() {
        let scenario = figure1();
        assert_eq!(scenario.labels.len(), 3);
        let a = scenario.element("A");
        assert!(scenario.replay(VersionStampMechanism::reducing()).contains(a));
    }

    #[test]
    #[should_panic(expected = "unknown scenario label")]
    fn unknown_label_panics() {
        let _ = figure1().element("Z");
    }
}
