//! Graphviz (DOT) export of system evolutions.
//!
//! The paper's figures are drawings of evolution DAGs: elements as nodes,
//! update/fork/join transitions as arrows, annotated with version vectors
//! (Figure 1), causal histories (Section 2) or version stamps (Figure 4).
//! This module regenerates such drawings from any [`Trace`] and any
//! [`Mechanism`], so `dot -Tpdf` can render the reproduction's counterpart
//! of each figure.
//!
//! ```
//! use vstamp_sim::{figure4, viz};
//! use vstamp_core::TreeStampMechanism;
//!
//! let scenario = figure4();
//! let dot = viz::evolution_dot(TreeStampMechanism::reducing(), &scenario.trace, "figure4");
//! assert!(dot.starts_with("digraph figure4"));
//! ```

use core::fmt::Debug;
use std::collections::BTreeMap;

use vstamp_core::{Applied, Configuration, ElementId, Mechanism, Trace};

/// One node of the evolution DAG: an element that existed at some point in
/// the run, labelled with its payload as rendered by the mechanism.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvolutionNode {
    /// The element identifier.
    pub id: ElementId,
    /// Rendered payload (stamp, vector, causal history, …).
    pub label: String,
    /// Whether the element is still part of the final frontier.
    pub live: bool,
}

/// One edge of the evolution DAG.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvolutionEdge {
    /// The element consumed by the operation.
    pub from: ElementId,
    /// The element produced by the operation.
    pub to: ElementId,
    /// The kind of operation ("update", "fork" or "join").
    pub kind: &'static str,
}

/// The full evolution DAG of a trace under one mechanism.
#[derive(Debug, Clone, Default)]
pub struct EvolutionGraph {
    /// Every element that ever existed, in creation order.
    pub nodes: Vec<EvolutionNode>,
    /// Lineage edges.
    pub edges: Vec<EvolutionEdge>,
}

impl EvolutionGraph {
    /// Number of elements that ever existed.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of lineage edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The nodes of the final frontier.
    #[must_use]
    pub fn frontier(&self) -> Vec<&EvolutionNode> {
        self.nodes.iter().filter(|n| n.live).collect()
    }
}

/// Replays `trace` against `mechanism` and records the full evolution DAG,
/// labelling every element with the mechanism's `Debug` rendering of its
/// payload.
pub fn evolution_graph<M>(mechanism: M, trace: &Trace) -> EvolutionGraph
where
    M: Mechanism,
    M::Element: Debug,
{
    let mut config = Configuration::new(mechanism);
    let mut labels: BTreeMap<ElementId, String> = BTreeMap::new();
    let root = config.ids()[0];
    labels.insert(root, format!("{:?}", config.get(root).expect("initial element")));

    let mut edges = Vec::new();
    for op in trace {
        let inputs = op.inputs();
        let applied = config.apply(*op).expect("trace replays cleanly");
        for output in applied.outputs() {
            labels
                .insert(output, format!("{:?}", config.get(output).expect("just-created element")));
            for &input in &inputs {
                edges.push(EvolutionEdge { from: input, to: output, kind: op.kind() });
            }
        }
        // joins and forks both covered: Applied::outputs() yields 1 or 2 ids
        let _ = &applied;
        debug_assert!(matches!(
            applied,
            Applied::Updated(_) | Applied::Forked(_, _) | Applied::Joined(_)
        ));
    }

    let nodes = labels
        .into_iter()
        .map(|(id, label)| EvolutionNode { id, label, live: config.contains(id) })
        .collect();
    EvolutionGraph { nodes, edges }
}

fn escape(label: &str) -> String {
    label.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Renders the evolution of `trace` under `mechanism` as a Graphviz DOT
/// document named `graph_name`. Live frontier elements are drawn with a
/// double border, update edges are bold, fork edges solid and join edges
/// dashed.
pub fn evolution_dot<M>(mechanism: M, trace: &Trace, graph_name: &str) -> String
where
    M: Mechanism,
    M::Element: Debug,
{
    let graph = evolution_graph(mechanism, trace);
    let mut out = String::new();
    out.push_str(&format!("digraph {graph_name} {{\n"));
    out.push_str("  rankdir=LR;\n  node [shape=box, fontname=\"monospace\"];\n");
    for node in &graph.nodes {
        let peripheries = if node.live { 2 } else { 1 };
        out.push_str(&format!(
            "  \"{}\" [label=\"{}\\n{}\", peripheries={}];\n",
            node.id,
            node.id,
            escape(&node.label),
            peripheries
        ));
    }
    for edge in &graph.edges {
        let style = match edge.kind {
            "update" => "bold",
            "join" => "dashed",
            _ => "solid",
        };
        out.push_str(&format!(
            "  \"{}\" -> \"{}\" [label=\"{}\", style={}];\n",
            edge.from, edge.to, edge.kind, style
        ));
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{figure1, figure2};
    use vstamp_core::causal::CausalMechanism;
    use vstamp_core::TreeStampMechanism;

    #[test]
    fn graph_counts_match_the_trace_structure() {
        let scenario = figure2();
        let graph = evolution_graph(TreeStampMechanism::reducing(), &scenario.trace);
        // one node per element ever created: initial + outputs of every op
        let expected_nodes: usize = 1 + scenario
            .trace
            .iter()
            .map(|op| match op {
                vstamp_core::Operation::Fork(_) => 2,
                _ => 1,
            })
            .sum::<usize>();
        assert_eq!(graph.node_count(), expected_nodes);
        // every operation contributes inputs × outputs edges
        let expected_edges: usize = scenario
            .trace
            .iter()
            .map(|op| match op {
                vstamp_core::Operation::Fork(_) => 2,
                vstamp_core::Operation::Join(_, _) => 2,
                vstamp_core::Operation::Update(_) => 1,
            })
            .sum();
        assert_eq!(graph.edge_count(), expected_edges);
        // the final frontier of Figure 2 has three elements
        assert_eq!(graph.frontier().len(), 3);
    }

    #[test]
    fn dot_output_is_well_formed_for_every_mechanism() {
        let scenario = figure1();
        for dot in [
            evolution_dot(TreeStampMechanism::reducing(), &scenario.trace, "fig1_stamps"),
            evolution_dot(CausalMechanism::new(), &scenario.trace, "fig1_causal"),
        ] {
            assert!(dot.starts_with("digraph "));
            assert!(dot.trim_end().ends_with('}'));
            assert_eq!(dot.matches("->").count(), {
                let graph = evolution_graph(TreeStampMechanism::reducing(), &scenario.trace);
                graph.edge_count()
            });
            assert!(dot.contains("peripheries=2"), "final frontier must be highlighted");
            assert!(dot.contains("style=dashed"), "joins must be rendered dashed");
            assert!(dot.contains("style=bold"), "updates must be rendered bold");
        }
    }

    #[test]
    fn labels_are_escaped() {
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
    }

    #[test]
    fn operation_lineage_is_recorded() {
        let scenario = figure1();
        let graph = evolution_graph(TreeStampMechanism::reducing(), &scenario.trace);
        // every edge points from an earlier element to a later one
        for edge in &graph.edges {
            assert!(edge.from.raw() < edge.to.raw(), "lineage must move forward: {edge:?}");
        }
        // every non-root node has at least one incoming edge
        for node in &graph.nodes {
            if node.id.raw() == 0 {
                continue;
            }
            assert!(graph.edges.iter().any(|e| e.to == node.id), "node {} has no lineage", node.id);
        }
    }
}
