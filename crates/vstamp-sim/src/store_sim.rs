//! Store-level simulation: drives an N-replica `vstamp-store` cluster
//! through partition/heal and churn workloads and checks every read and the
//! converged end state against a **causal oracle** built from the actual
//! session structure.
//!
//! Every simulated write stores its unique put id as the value and records
//! the ids it causally follows (the sibling values its session read). The
//! oracle is thus the exact happens-before DAG of the run, independent of
//! any clock mechanism, and two violation classes are counted:
//!
//! * **false concurrency** — a read returns two sibling values where one
//!   causally covers the other (the clock failed to supersede);
//! * **lost updates** — after healing and full anti-entropy, a causally
//!   maximal write is missing from the converged sibling set (the clock
//!   superseded something it should not have), plus the dual
//!   **resurrections** (an obsolete version survived).
//!
//! Both backends — version stamps (eager or GC) and the dynamic-VV
//! baseline — are driven through the identical deterministic schedule, so
//! the reports are directly comparable (`bench_store_json` records them).

use std::collections::{BTreeMap, BTreeSet};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use vstamp_store::{Cluster, ProfileSnapshot, StoreBackend, StoreMetrics};

/// Parameters of a store simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StoreSimSpec {
    /// Number of store replicas.
    pub replicas: usize,
    /// Number of shards per replica.
    pub shards: usize,
    /// Number of distinct keys the workload touches.
    pub keys: usize,
    /// Number of epochs.
    pub rounds: usize,
    /// Client sessions (get → put) per epoch.
    pub ops_per_round: usize,
    /// Initial partition islands; one heals into another after every
    /// `rounds / islands` epochs until the cluster is whole.
    pub islands: usize,
    /// Probability (percent) that a session deletes instead of writing.
    pub delete_percent: u32,
    /// Probability (percent) that a session uses a stale context (an
    /// earlier read at the same replica), creating genuine siblings.
    pub stale_percent: u32,
    /// Random seed.
    pub seed: u64,
    /// Enables the cluster's wall-clock section profiling (GC / join /
    /// relation / codec / lock); the snapshot lands in the report.
    pub profile: bool,
}

impl StoreSimSpec {
    /// The partition/heal scenario: islands that merge over time.
    #[must_use]
    pub fn partition_heal(replicas: usize, rounds: usize, seed: u64) -> Self {
        StoreSimSpec {
            replicas,
            shards: 4,
            keys: 12,
            rounds,
            ops_per_round: 24,
            islands: replicas.clamp(1, 3),
            delete_percent: 5,
            stale_percent: 20,
            seed,
            profile: false,
        }
    }

    /// The same spec with profiling switched on.
    #[must_use]
    pub fn with_profile(mut self) -> Self {
        self.profile = true;
        self
    }

    /// The churn scenario: no partitions, constant all-to-all gossip, many
    /// concurrent writers per key.
    #[must_use]
    pub fn churn(replicas: usize, rounds: usize, seed: u64) -> Self {
        StoreSimSpec {
            replicas,
            shards: 4,
            keys: 6,
            rounds,
            ops_per_round: 30,
            islands: 1,
            delete_percent: 10,
            stale_percent: 35,
            seed,
            profile: false,
        }
    }
}

/// The outcome of one simulated run.
#[derive(Debug, Clone, PartialEq)]
pub struct StoreSimReport {
    /// Backend label.
    pub backend: &'static str,
    /// Total client sessions performed.
    pub sessions: usize,
    /// Total writes (puts + deletes).
    pub writes: usize,
    /// Sibling pairs returned by reads where one causally covers the other.
    pub false_concurrency: usize,
    /// Causally maximal live writes missing after convergence.
    pub lost_updates: usize,
    /// Obsolete writes still present after convergence.
    pub resurrections: usize,
    /// Whether the cluster converged after healing plus full sweeps.
    pub converged: bool,
    /// Keys recycled by the final quiescent compaction.
    pub keys_recycled: usize,
    /// Cluster metrics after convergence and compaction.
    pub final_metrics: StoreMetrics,
    /// Mean per-`(replica, key)` metadata bits, sampled once per epoch.
    pub metadata_curve: Vec<f64>,
    /// Wall-clock section breakdown (zeros unless the spec enabled
    /// profiling).
    pub profile: ProfileSnapshot,
}

impl StoreSimReport {
    /// `true` when the run had no causal violations and converged.
    #[must_use]
    pub fn is_exact(&self) -> bool {
        self.false_concurrency == 0
            && self.lost_updates == 0
            && self.resurrections == 0
            && self.converged
    }
}

/// The happens-before DAG of the run: per put id, the transitive closure of
/// the put ids its session had read.
#[derive(Debug, Default)]
struct Oracle {
    /// `closure[id]` = every id causally before `id` (transitively).
    closure: BTreeMap<u64, BTreeSet<u64>>,
    /// Put ids that were deletes.
    deletes: BTreeSet<u64>,
    /// Puts per key, in issue order.
    by_key: BTreeMap<String, Vec<u64>>,
}

impl Oracle {
    fn record_write(&mut self, id: u64, key: &str, read_ids: &[u64], delete: bool) {
        let mut closure = BTreeSet::new();
        for &seen in read_ids {
            closure.insert(seen);
            if let Some(upstream) = self.closure.get(&seen) {
                closure.extend(upstream.iter().copied());
            }
        }
        self.closure.insert(id, closure);
        if delete {
            self.deletes.insert(id);
        }
        self.by_key.entry(key.to_owned()).or_default().push(id);
    }

    fn covers(&self, later: u64, earlier: u64) -> bool {
        self.closure.get(&later).is_some_and(|closure| closure.contains(&earlier))
    }

    /// Causally maximal writes on a key (nothing on the key covers them).
    fn maximal(&self, key: &str) -> BTreeSet<u64> {
        let Some(ids) = self.by_key.get(key) else { return BTreeSet::new() };
        ids.iter()
            .copied()
            .filter(|&candidate| !ids.iter().any(|&other| self.covers(other, candidate)))
            .collect()
    }

    /// Expected live values after convergence: maximal writes that are not
    /// deletes.
    fn expected_live(&self, key: &str) -> BTreeSet<u64> {
        self.maximal(key).into_iter().filter(|id| !self.deletes.contains(id)).collect()
    }
}

fn encode_id(id: u64) -> Vec<u8> {
    id.to_le_bytes().to_vec()
}

fn decode_id(value: &[u8]) -> u64 {
    u64::from_le_bytes(value.try_into().expect("sim values are 8-byte put ids"))
}

/// A remembered read a later (stale-context) session can write against.
struct Snapshot<B: StoreBackend> {
    replica: usize,
    key: String,
    read_ids: Vec<u64>,
    context: Option<B::Clock>,
}

/// Runs a store simulation against the given backend, returning the oracle
/// report. The schedule is fully determined by `spec` (seeded), so runs are
/// reproducible and backend reports comparable.
pub fn run_store_sim<B: StoreBackend>(backend: B, spec: &StoreSimSpec) -> StoreSimReport {
    let backend_label = backend.label();
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut cluster = Cluster::new(backend, spec.replicas, spec.shards);
    if spec.profile {
        cluster.enable_profiling();
    }
    let mut oracle = Oracle::default();
    let mut next_id = 1u64;
    let mut sessions = 0usize;
    let mut false_concurrency = 0usize;
    let mut snapshots: Vec<Snapshot<B>> = Vec::new();
    let mut metadata_curve = Vec::with_capacity(spec.rounds);

    // Replica → island assignment; islands merge as rounds progress.
    let mut island_of: Vec<usize> = (0..spec.replicas).map(|r| r % spec.islands.max(1)).collect();
    let heal_every = (spec.rounds / spec.islands.max(1)).max(1);

    let keys: Vec<String> = (0..spec.keys.max(1)).map(|k| format!("key-{k}")).collect();

    for round in 0..spec.rounds {
        // Client sessions. A session either reads fresh (get → put) or
        // replays a remembered earlier read (stale context), which is what
        // manufactures genuine siblings.
        for _ in 0..spec.ops_per_round {
            sessions += 1;
            let use_stale = !snapshots.is_empty() && rng.gen_range(0..100u32) < spec.stale_percent;
            let (replica, key, read_ids, context) = if use_stale {
                let snapshot = snapshots.remove(rng.gen_range(0..snapshots.len()));
                (snapshot.replica, snapshot.key, snapshot.read_ids, snapshot.context)
            } else {
                let replica = rng.gen_range(0..spec.replicas);
                let key = keys[rng.gen_range(0..keys.len())].clone();
                let read = cluster.get(replica, &key);
                let ids: Vec<u64> = read.values.iter().map(|v| decode_id(v)).collect();
                // Oracle check: returned siblings must be pairwise
                // causally incomparable.
                for (i, &a) in ids.iter().enumerate() {
                    for &b in &ids[i + 1..] {
                        if oracle.covers(a, b) || oracle.covers(b, a) {
                            false_concurrency += 1;
                        }
                    }
                }
                if rng.gen_range(0..100u32) < 30 {
                    snapshots.push(Snapshot {
                        replica,
                        key: key.clone(),
                        read_ids: ids.clone(),
                        context: read.context.clone(),
                    });
                    if snapshots.len() > 32 {
                        snapshots.remove(0);
                    }
                }
                (replica, key, ids, read.context)
            };
            let id = next_id;
            next_id += 1;
            let delete = rng.gen_range(0..100u32) < spec.delete_percent;
            if delete {
                cluster.delete(replica, &key, context.as_ref());
            } else {
                cluster.put(replica, &key, encode_id(id), context.as_ref());
            }
            oracle.record_write(id, &key, &read_ids, delete);
        }

        // Island-local anti-entropy: a few random intra-island pulls.
        for _ in 0..spec.replicas {
            let a = rng.gen_range(0..spec.replicas);
            let peers: Vec<usize> =
                (0..spec.replicas).filter(|&r| r != a && island_of[r] == island_of[a]).collect();
            if peers.is_empty() {
                continue;
            }
            let b = peers[rng.gen_range(0..peers.len())];
            cluster.anti_entropy(a, b);
            cluster.anti_entropy(b, a);
        }

        // Heal: merge the highest island into the lowest remaining one.
        if (round + 1) % heal_every == 0 {
            if let Some(&highest) = island_of.iter().max() {
                if highest > 0 {
                    for island in island_of.iter_mut() {
                        if *island == highest {
                            *island = highest - 1;
                        }
                    }
                }
            }
        }

        metadata_curve.push(cluster.metrics().mean_key_metadata_bits);
    }

    // Heal everything and run sweeps until converged (bounded).
    for island in island_of.iter_mut() {
        *island = 0;
    }
    let mut converged = false;
    for _ in 0..spec.replicas * 2 + 4 {
        for a in 0..spec.replicas {
            for b in 0..spec.replicas {
                if a != b {
                    cluster.anti_entropy(a, b);
                }
            }
        }
        if cluster.converged() {
            converged = true;
            break;
        }
    }

    // Quiescent-point compaction (snapshots are dead by now).
    snapshots.clear();
    let compaction = cluster.compact();

    // Compare the converged state with the oracle's maximal frontier.
    let mut lost_updates = 0usize;
    let mut resurrections = 0usize;
    for key in &keys {
        let expected = oracle.expected_live(key);
        let got: BTreeSet<u64> = cluster.get(0, key).values.iter().map(|v| decode_id(v)).collect();
        lost_updates += expected.difference(&got).count();
        resurrections += got.difference(&expected).count();
    }

    StoreSimReport {
        backend: backend_label,
        sessions,
        writes: (next_id - 1) as usize,
        false_concurrency,
        lost_updates,
        resurrections,
        converged,
        keys_recycled: compaction.keys_recycled + compaction.keys_dropped,
        final_metrics: cluster.metrics(),
        metadata_curve,
        profile: cluster.profile_snapshot(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vstamp_store::{DynamicVvBackend, VstampBackend};

    #[test]
    fn partition_heal_is_exact_for_every_backend() {
        let spec = StoreSimSpec::partition_heal(6, 10, 42);
        for report in [
            run_store_sim(VstampBackend::gc(), &spec),
            run_store_sim(VstampBackend::eager(), &spec),
            run_store_sim(DynamicVvBackend::new(), &spec),
        ] {
            assert!(
                report.is_exact(),
                "{}: lost={} false_conc={} resurrect={} converged={}",
                report.backend,
                report.lost_updates,
                report.false_concurrency,
                report.resurrections,
                report.converged
            );
            assert!(report.writes > 0);
            assert_eq!(report.metadata_curve.len(), 10);
        }
    }

    #[test]
    fn churn_is_exact_for_every_backend() {
        let spec = StoreSimSpec::churn(4, 12, 7);
        for report in [
            run_store_sim(VstampBackend::gc(), &spec),
            run_store_sim(VstampBackend::eager(), &spec),
            run_store_sim(DynamicVvBackend::new(), &spec),
        ] {
            assert!(
                report.is_exact(),
                "{}: lost={} false_conc={} resurrect={} converged={}",
                report.backend,
                report.lost_updates,
                report.false_concurrency,
                report.resurrections,
                report.converged
            );
        }
    }

    #[test]
    fn gc_backend_keeps_metadata_below_the_baseline_growth() {
        // The headline store claim: version-stamp metadata adapts to the
        // frontier while dynamic-VV vectors grow with retired incarnations.
        let spec = StoreSimSpec::churn(4, 16, 3);
        let stamps = run_store_sim(VstampBackend::gc(), &spec);
        let dynamic = run_store_sim(DynamicVvBackend::new(), &spec);
        assert!(stamps.is_exact() && dynamic.is_exact());
        let stamp_final = stamps.metadata_curve.last().copied().unwrap_or(0.0);
        let dynamic_final = dynamic.metadata_curve.last().copied().unwrap_or(0.0);
        assert!(
            stamp_final < dynamic_final,
            "stamps {stamp_final:.0} bits vs dynamic-vv {dynamic_final:.0} bits"
        );
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let spec = StoreSimSpec::partition_heal(4, 6, 11);
        let a = run_store_sim(VstampBackend::gc(), &spec);
        let b = run_store_sim(VstampBackend::gc(), &spec);
        assert_eq!(a, b);
    }

    #[test]
    fn gc_watermarks_trade_no_causal_exactness() {
        use vstamp_store::GcWatermarks;
        // The amortization claim, oracle-enforced: collapse-every-merge and
        // heavily deferred collapse run the identical schedule with zero
        // lost updates, false concurrency or resurrections, and once
        // anti-entropy settles (full sweeps + forced flush at the
        // compaction boundary) the deferred run's metadata lands within a
        // whisker of the aggressive run's.
        for spec in [StoreSimSpec::partition_heal(5, 10, 97), StoreSimSpec::churn(4, 14, 23)] {
            let aggressive =
                run_store_sim(VstampBackend::gc_with(GcWatermarks::aggressive()), &spec);
            let lazy = run_store_sim(VstampBackend::gc_with(GcWatermarks::lazy()), &spec);
            for report in [&aggressive, &lazy] {
                assert!(
                    report.is_exact(),
                    "watermark run must stay exact: lost={} false_conc={} resurrect={} converged={}",
                    report.lost_updates,
                    report.false_concurrency,
                    report.resurrections,
                    report.converged
                );
            }
            assert_eq!(aggressive.keys_recycled, lazy.keys_recycled);
            let (a, l) = (
                aggressive.final_metrics.mean_key_metadata_bits,
                lazy.final_metrics.mean_key_metadata_bits,
            );
            assert!(
                l <= a * 1.25 + 64.0,
                "deferred GC must converge towards aggressive metadata: lazy {l:.1} vs aggressive {a:.1} bits"
            );
        }
    }

    #[test]
    fn deferred_gc_converges_to_identical_metadata_once_fully_settled() {
        use vstamp_store::{Cluster, GcWatermarks, VstampBackend};
        // When every key fully settles (all siblings resolved, cluster
        // converged), compaction re-mints each key's universe
        // deterministically — so aggressive and lazy watermarks end with
        // byte-identical metadata, whatever their collapse schedules did
        // in between.
        let run = |watermarks: GcWatermarks| {
            let mut cluster = Cluster::new(VstampBackend::gc_with(watermarks), 3, 2);
            for round in 0..10u8 {
                for replica in 0..3usize {
                    for key in ["a", "b"] {
                        let read = cluster.get(replica, key);
                        cluster.put(
                            replica,
                            key,
                            vec![round, replica as u8],
                            read.context.as_ref(),
                        );
                    }
                }
                cluster.anti_entropy(usize::from(round) % 3, (usize::from(round) + 1) % 3);
            }
            // Sync fully so the resolver's context covers every sibling,
            // resolve every key at one replica, then settle fully.
            for _ in 0..4 {
                for a in 0..3 {
                    for b in 0..3 {
                        if a != b {
                            cluster.anti_entropy(a, b);
                        }
                    }
                }
            }
            for key in ["a", "b"] {
                let read = cluster.get(0, key);
                cluster.put(0, key, b"settled".to_vec(), read.context.as_ref());
            }
            for _ in 0..4 {
                for a in 0..3 {
                    for b in 0..3 {
                        if a != b {
                            cluster.anti_entropy(a, b);
                        }
                    }
                }
            }
            assert!(cluster.converged());
            let stats = cluster.compact();
            assert_eq!(stats.keys_recycled, 2, "fully-settled keys must re-mint");
            cluster.metrics()
        };
        let aggressive = run(GcWatermarks::aggressive());
        let lazy = run(GcWatermarks::lazy());
        assert_eq!(aggressive.clock_bits_total, lazy.clock_bits_total);
        assert_eq!(aggressive.element_bits_total, lazy.element_bits_total);
        assert_eq!(aggressive.mean_key_metadata_bits, lazy.mean_key_metadata_bits);
    }

    #[test]
    fn profiled_runs_report_section_breakdown() {
        let spec = StoreSimSpec::partition_heal(4, 6, 5).with_profile();
        let report = run_store_sim(VstampBackend::gc(), &spec);
        assert!(report.is_exact());
        assert!(report.profile.join.calls > 0);
        assert!(report.profile.codec.calls > 0);
        // Unprofiled runs stay at zero.
        let quiet = run_store_sim(VstampBackend::gc(), &StoreSimSpec::partition_heal(4, 6, 5));
        assert_eq!(quiet.profile.join.calls, 0);
    }
}
