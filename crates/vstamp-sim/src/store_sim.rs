//! Store-level simulation: drives an N-replica `vstamp-store` cluster
//! through partition/heal and churn workloads and checks every read and the
//! converged end state against a **causal oracle** built from the actual
//! session structure.
//!
//! Every simulated write stores its unique put id as the value and records
//! the ids it causally follows (the sibling values its session read). The
//! oracle is thus the exact happens-before DAG of the run, independent of
//! any clock mechanism, and two violation classes are counted:
//!
//! * **false concurrency** — a read returns two sibling values where one
//!   causally covers the other (the clock failed to supersede);
//! * **lost updates** — after healing and full anti-entropy, a causally
//!   maximal write is missing from the converged sibling set (the clock
//!   superseded something it should not have), plus the dual
//!   **resurrections** (an obsolete version survived).
//!
//! Both backends — version stamps (eager or GC) and the dynamic-VV
//! baseline — are driven through the identical deterministic schedule, so
//! the reports are directly comparable (`bench_store_json` records them).

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use vstamp_store::{
    Cluster, ClusterConfig, GossipStats, ProfileSnapshot, StoreBackend, StoreMetrics,
};

/// Parameters of a store simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StoreSimSpec {
    /// Number of store replicas.
    pub replicas: usize,
    /// Number of shards per replica.
    pub shards: usize,
    /// Number of distinct keys the workload touches.
    pub keys: usize,
    /// Number of epochs.
    pub rounds: usize,
    /// Client sessions (get → put) per epoch.
    pub ops_per_round: usize,
    /// Initial partition islands; one heals into another after every
    /// `rounds / islands` epochs until the cluster is whole.
    pub islands: usize,
    /// Probability (percent) that a session deletes instead of writing.
    pub delete_percent: u32,
    /// Probability (percent) that a session uses a stale context (an
    /// earlier read at the same replica), creating genuine siblings.
    pub stale_percent: u32,
    /// Random seed.
    pub seed: u64,
    /// Enables the cluster's wall-clock section profiling (GC / join /
    /// relation / codec / lock); the snapshot lands in the report.
    pub profile: bool,
    /// Client threads driving sessions concurrently over the shared
    /// cluster. `1` (the default) runs the fully deterministic serial
    /// schedule; above that each epoch's sessions and anti-entropy pulls
    /// are split across OS threads, each with an independent causal
    /// session stream, and the causal oracle is enforced under the real
    /// interleavings.
    pub threads: usize,
    /// Disables delta clock frames on the wire (the pre-delta full-frame
    /// baseline); the oracle gates the run either way.
    pub full_frames_only: bool,
    /// Deliberately flips every shipped context fingerprint so each delta
    /// frame misses at the receiver and the NAK/full-frame fallback
    /// carries the exchange — the forced-miss correctness drill.
    pub perturb_fingerprints: bool,
    /// Enables read repair: every `get` merges all replicas' sibling sets
    /// and pushes missing versions back to lagging replicas, giving
    /// monotonic reads across replica switches mid-partition.
    pub read_repair: bool,
    /// Disables batched delta application (the pre-batching reference
    /// path: one lock acquisition and context rebuild per key delta).
    pub unbatched_apply: bool,
}

impl StoreSimSpec {
    /// The partition/heal scenario: islands that merge over time.
    #[must_use]
    pub fn partition_heal(replicas: usize, rounds: usize, seed: u64) -> Self {
        StoreSimSpec {
            replicas,
            shards: 4,
            keys: 12,
            rounds,
            ops_per_round: 24,
            islands: replicas.clamp(1, 3),
            delete_percent: 5,
            stale_percent: 20,
            seed,
            profile: false,
            threads: 1,
            full_frames_only: false,
            perturb_fingerprints: false,
            read_repair: false,
            unbatched_apply: false,
        }
    }

    /// The same spec with profiling switched on.
    #[must_use]
    pub fn with_profile(mut self) -> Self {
        self.profile = true;
        self
    }

    /// The same spec driven by `threads` concurrent client threads.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The same spec with delta clock frames disabled (full-frame
    /// baseline wire).
    #[must_use]
    pub fn with_full_frames_only(mut self) -> Self {
        self.full_frames_only = true;
        self
    }

    /// The same spec with every shipped fingerprint deliberately flipped,
    /// forcing the NAK/full-frame fallback on every would-be delta frame.
    #[must_use]
    pub fn with_perturbed_fingerprints(mut self) -> Self {
        self.perturb_fingerprints = true;
        self
    }

    /// The same spec with read repair switched on at every `get`.
    #[must_use]
    pub fn with_read_repair(mut self) -> Self {
        self.read_repair = true;
        self
    }

    /// The same spec with batched delta application disabled (per-key
    /// reference apply path).
    #[must_use]
    pub fn with_unbatched_apply(mut self) -> Self {
        self.unbatched_apply = true;
        self
    }

    /// The cluster wiring this spec asks for.
    fn cluster_config(&self) -> ClusterConfig {
        let mut config = ClusterConfig::new(self.replicas, self.shards);
        if self.full_frames_only {
            config = config.without_delta_frames();
        }
        if self.perturb_fingerprints {
            config = config.with_perturbed_fingerprints();
        }
        if self.read_repair {
            config = config.with_read_repair();
        }
        if self.unbatched_apply {
            config = config.without_batched_apply();
        }
        config
    }

    /// The partition/heal scenario at thread-scaling scale: enough keys
    /// that writers spread across shards and enough sessions per epoch
    /// that the parallel phase dominates scheduling overhead. The same
    /// grid is run at every thread count, so ops/s are comparable.
    #[must_use]
    pub fn partition_heal_scaling(seed: u64) -> Self {
        StoreSimSpec {
            replicas: 8,
            shards: 16,
            keys: 48,
            rounds: 10,
            ops_per_round: 320,
            islands: 3,
            delete_percent: 5,
            stale_percent: 20,
            seed,
            profile: false,
            threads: 1,
            full_frames_only: false,
            perturb_fingerprints: false,
            read_repair: false,
            unbatched_apply: false,
        }
    }

    /// The churn scenario at thread-scaling scale.
    #[must_use]
    pub fn churn_scaling(seed: u64) -> Self {
        StoreSimSpec {
            replicas: 6,
            shards: 16,
            keys: 32,
            rounds: 10,
            ops_per_round: 320,
            islands: 1,
            delete_percent: 10,
            stale_percent: 35,
            seed,
            profile: false,
            threads: 1,
            full_frames_only: false,
            perturb_fingerprints: false,
            read_repair: false,
            unbatched_apply: false,
        }
    }

    /// A seconds-scale shrink of a scaling grid (CI smoke).
    #[must_use]
    pub fn smoke_scaling(mut self) -> Self {
        self.rounds = 4;
        self.ops_per_round = 96;
        self.keys = self.keys.min(16);
        self
    }

    /// The churn scenario: no partitions, constant all-to-all gossip, many
    /// concurrent writers per key.
    #[must_use]
    pub fn churn(replicas: usize, rounds: usize, seed: u64) -> Self {
        StoreSimSpec {
            replicas,
            shards: 4,
            keys: 6,
            rounds,
            ops_per_round: 30,
            islands: 1,
            delete_percent: 10,
            stale_percent: 35,
            seed,
            profile: false,
            threads: 1,
            full_frames_only: false,
            perturb_fingerprints: false,
            read_repair: false,
            unbatched_apply: false,
        }
    }
}

/// The outcome of one simulated run.
#[derive(Debug, Clone, PartialEq)]
pub struct StoreSimReport {
    /// Backend label.
    pub backend: &'static str,
    /// Total client sessions performed.
    pub sessions: usize,
    /// Total writes (puts + deletes).
    pub writes: usize,
    /// Sibling pairs returned by reads where one causally covers the other.
    pub false_concurrency: usize,
    /// Causally maximal live writes missing after convergence.
    pub lost_updates: usize,
    /// Obsolete writes still present after convergence.
    pub resurrections: usize,
    /// Whether the cluster converged after healing plus full sweeps.
    pub converged: bool,
    /// Keys recycled by the final quiescent compaction.
    pub keys_recycled: usize,
    /// Cluster metrics after convergence and compaction.
    pub final_metrics: StoreMetrics,
    /// Mean per-`(replica, key)` metadata bits, sampled once per epoch.
    pub metadata_curve: Vec<f64>,
    /// Wall-clock section breakdown (zeros unless the spec enabled
    /// profiling).
    pub profile: ProfileSnapshot,
    /// Bytes-on-wire accounting for the whole run.
    pub wire: WireReport,
}

/// Bytes-on-wire accounting of one run: cumulative totals plus the
/// per-epoch bytes-per-exchange curve the benchmark plots. All byte
/// counts are envelope-inclusive (kind byte, sender id, length prefix).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WireReport {
    /// Anti-entropy exchanges performed (epochs plus settle sweeps).
    pub exchanges: usize,
    /// Digest payload bytes shipped, envelopes included.
    pub digest_bytes: usize,
    /// Delta payload bytes shipped (including NAKs and full-frame
    /// refetches after fingerprint misses), envelopes included.
    pub delta_bytes: usize,
    /// Versions shipped as delta frames (dot + fingerprint).
    pub delta_frames: usize,
    /// Versions shipped as full clock frames.
    pub full_frames: usize,
    /// Keys refetched as full frames after a fingerprint miss.
    pub nak_refetches: usize,
    /// Bytes the delta frames saved against full-frame encodings of the
    /// same versions.
    pub wire_bytes_saved: usize,
    /// Total bytes of the clock frames shipped (full and delta).
    pub frame_bytes: usize,
    /// The delta frames' share of `frame_bytes`.
    pub delta_frame_bytes: usize,
    /// Versions never shipped because the requester's digest proved it
    /// already held them.
    pub versions_skipped: usize,
    /// Exchanges opened with an O(1) digest-root probe.
    pub root_probes: usize,
    /// Probes that hit: converged peers that exchanged only the probe.
    pub root_matches: usize,
    /// Mean payload bytes (digest + delta) per exchange, one entry per
    /// epoch.
    pub bytes_per_exchange_curve: Vec<f64>,
    /// Mean payload bytes per exchange across the post-heal converged
    /// epochs: full sweeps run after the cluster has converged, when an
    /// exchange costs only the protocol's probe of choice — the full
    /// digest for the PR 5 baseline, the 8-byte root for the adaptive
    /// wire. The steady-state figure of the bytes-on-wire benchmark.
    pub converged_bytes_per_exchange: f64,
    /// Mean payload bytes per exchange across the post-heal settle
    /// sweeps — the steady-state figure the delta codec targets.
    pub settle_bytes_per_exchange: f64,
}

impl WireReport {
    /// Mean payload bytes per exchange across the whole run.
    #[must_use]
    pub fn mean_bytes_per_exchange(&self) -> f64 {
        let total = self.digest_bytes + self.delta_bytes;
        total as f64 / self.exchanges.max(1) as f64
    }

    /// Mean clock-frame bytes per replicated version — the figure the
    /// delta codec drives towards O(1).
    #[must_use]
    pub fn clock_bytes_per_version(&self) -> f64 {
        let versions = self.delta_frames + self.full_frames;
        self.frame_bytes as f64 / versions.max(1) as f64
    }

    /// Replication-payload bytes per exchange: the delta direction alone,
    /// excluding the fixed digest probe both wires pay identically.
    #[must_use]
    pub fn replication_bytes_per_exchange(&self) -> f64 {
        self.delta_bytes as f64 / self.exchanges.max(1) as f64
    }

    /// Versions an exchange's delta brought the requester up to date on:
    /// the ones actually shipped plus the ones dedup proved it already
    /// held (the full-frame baseline reships those, so its count is just
    /// the shipped frames).
    #[must_use]
    pub fn versions_delivered(&self) -> usize {
        self.delta_frames + self.full_frames + self.versions_skipped
    }

    /// Replication-payload bytes per delivered version — the headline
    /// figure the adaptive wire drives towards O(1) per version.
    #[must_use]
    pub fn bytes_per_delivered_version(&self) -> f64 {
        self.delta_bytes as f64 / self.versions_delivered().max(1) as f64
    }
}

/// Full sweeps run after convergence to measure the steady-state wire.
const CONVERGED_EPOCH_SWEEPS: usize = 4;

/// Mean payload bytes per exchange between two cumulative snapshots.
fn bytes_per_exchange(before: GossipStats, after: GossipStats) -> f64 {
    let bytes = (after.digest_bytes + after.delta_bytes)
        .saturating_sub(before.digest_bytes + before.delta_bytes);
    let exchanges = after.exchanges.saturating_sub(before.exchanges);
    bytes as f64 / exchanges.max(1) as f64
}

/// Folds the final cumulative gossip counters and the sampled curve into
/// the report's [`WireReport`].
fn wire_report(
    totals: GossipStats,
    bytes_per_exchange_curve: Vec<f64>,
    settle_bytes_per_exchange: f64,
    converged_bytes_per_exchange: f64,
) -> WireReport {
    WireReport {
        exchanges: totals.exchanges,
        digest_bytes: totals.digest_bytes,
        delta_bytes: totals.delta_bytes,
        delta_frames: totals.delta_frames,
        full_frames: totals.full_frames,
        nak_refetches: totals.nak_refetches,
        wire_bytes_saved: totals.wire_bytes_saved,
        frame_bytes: totals.frame_bytes,
        delta_frame_bytes: totals.delta_frame_bytes,
        versions_skipped: totals.versions_skipped,
        root_probes: totals.root_probes,
        root_matches: totals.root_matches,
        bytes_per_exchange_curve,
        settle_bytes_per_exchange,
        converged_bytes_per_exchange,
    }
}

impl StoreSimReport {
    /// `true` when the run had no causal violations and converged.
    #[must_use]
    pub fn is_exact(&self) -> bool {
        self.false_concurrency == 0
            && self.lost_updates == 0
            && self.resurrections == 0
            && self.converged
    }
}

/// The happens-before DAG of one key: per put id, the transitive closure
/// of the put ids its session had read. Sessions read and write a single
/// key, so causal chains never cross keys and the oracle shards cleanly —
/// which is what lets the concurrent driver stripe it (one mutex per key)
/// without a global serialization point.
///
/// Public as the *oracle sampling hook*: external drivers (the open-loop
/// latency benchmark) keep one `KeyOracle` per sampled key, record their
/// sessions through it, and gate their run on
/// [`KeyOracle::false_concurrency`] / [`KeyOracle::expected_live`] exactly
/// as the simulation drivers here do. Values must be
/// [`encode_id`]-encoded put ids for the final live-set diff to work.
#[derive(Debug, Default)]
pub struct KeyOracle {
    /// `closure[id]` = every id causally before `id` (transitively).
    closure: BTreeMap<u64, BTreeSet<u64>>,
    /// Put ids that were deletes.
    deletes: BTreeSet<u64>,
    /// Puts on this key, in record order.
    ids: Vec<u64>,
}

impl KeyOracle {
    /// Records a session's write: `id` causally follows everything in
    /// `read_ids` (transitively).
    pub fn record_write(&mut self, id: u64, read_ids: &[u64], delete: bool) {
        let mut closure = BTreeSet::new();
        for &seen in read_ids {
            closure.insert(seen);
            if let Some(upstream) = self.closure.get(&seen) {
                closure.extend(upstream.iter().copied());
            }
        }
        self.closure.insert(id, closure);
        if delete {
            self.deletes.insert(id);
        }
        self.ids.push(id);
    }

    /// Whether write `later` causally covers (happens after) write
    /// `earlier`.
    pub fn covers(&self, later: u64, earlier: u64) -> bool {
        self.closure.get(&later).is_some_and(|closure| closure.contains(&earlier))
    }

    /// Sibling pairs in `read_ids` where one causally covers the other —
    /// the false-concurrency count of one read.
    pub fn false_concurrency(&self, read_ids: &[u64]) -> usize {
        let mut violations = 0;
        for (i, &a) in read_ids.iter().enumerate() {
            for &b in &read_ids[i + 1..] {
                if self.covers(a, b) || self.covers(b, a) {
                    violations += 1;
                }
            }
        }
        violations
    }

    /// Causally maximal writes on the key (nothing covers them).
    pub fn maximal(&self) -> BTreeSet<u64> {
        self.ids
            .iter()
            .copied()
            .filter(|&candidate| !self.ids.iter().any(|&other| self.covers(other, candidate)))
            .collect()
    }

    /// Expected live values after convergence: maximal writes that are not
    /// deletes.
    pub fn expected_live(&self) -> BTreeSet<u64> {
        self.maximal().into_iter().filter(|id| !self.deletes.contains(id)).collect()
    }
}

/// The serial driver's oracle: one [`KeyOracle`] per key.
#[derive(Debug, Default)]
struct Oracle {
    by_key: BTreeMap<String, KeyOracle>,
}

impl Oracle {
    fn record_write(&mut self, id: u64, key: &str, read_ids: &[u64], delete: bool) {
        self.by_key.entry(key.to_owned()).or_default().record_write(id, read_ids, delete);
    }

    fn false_concurrency(&self, key: &str, read_ids: &[u64]) -> usize {
        self.by_key.get(key).map_or(0, |oracle| oracle.false_concurrency(read_ids))
    }

    fn expected_live(&self, key: &str) -> BTreeSet<u64> {
        self.by_key.get(key).map_or_else(BTreeSet::new, KeyOracle::expected_live)
    }
}

/// Encodes a put id as the 8-byte little-endian value the oracle drivers
/// store; [`decode_id`] inverts it.
pub fn encode_id(id: u64) -> Vec<u8> {
    id.to_le_bytes().to_vec()
}

/// Decodes a value written via [`encode_id`] back into its put id.
///
/// # Panics
///
/// Panics if `value` is not exactly 8 bytes — oracle-driven workloads only
/// ever store encoded ids.
pub fn decode_id(value: &[u8]) -> u64 {
    u64::from_le_bytes(value.try_into().expect("sim values are 8-byte put ids"))
}

/// A remembered read a later (stale-context) session can write against.
struct Snapshot<B: StoreBackend> {
    replica: usize,
    key: String,
    read_ids: Vec<u64>,
    context: Option<B::Clock>,
}

/// Runs a store simulation against the given backend, returning the oracle
/// report. With `spec.threads == 1` the schedule is fully determined by
/// `spec` (seeded), so runs are reproducible and backend reports
/// comparable; above that the run dispatches to the concurrent driver —
/// genuinely parallel interleavings, still oracle-exact.
pub fn run_store_sim<B: StoreBackend>(backend: B, spec: &StoreSimSpec) -> StoreSimReport {
    if spec.threads > 1 {
        return run_store_sim_concurrent(backend, spec);
    }
    let backend_label = backend.label();
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut cluster = Cluster::with_config(backend, spec.cluster_config());
    if spec.profile {
        cluster.enable_profiling();
    }
    let mut oracle = Oracle::default();
    let mut next_id = 1u64;
    let mut sessions = 0usize;
    let mut false_concurrency = 0usize;
    let mut snapshots: Vec<Snapshot<B>> = Vec::new();
    let mut metadata_curve = Vec::with_capacity(spec.rounds);
    let mut wire_curve = Vec::with_capacity(spec.rounds);
    let mut wire_mark = cluster.gossip_stats();

    // Replica → island assignment; islands merge as rounds progress.
    let mut island_of: Vec<usize> = (0..spec.replicas).map(|r| r % spec.islands.max(1)).collect();
    let heal_every = (spec.rounds / spec.islands.max(1)).max(1);

    let keys: Vec<String> = (0..spec.keys.max(1)).map(|k| format!("key-{k}")).collect();

    for round in 0..spec.rounds {
        // Client sessions. A session either reads fresh (get → put) or
        // replays a remembered earlier read (stale context), which is what
        // manufactures genuine siblings.
        for _ in 0..spec.ops_per_round {
            sessions += 1;
            let use_stale = !snapshots.is_empty() && rng.gen_range(0..100u32) < spec.stale_percent;
            let (replica, key, read_ids, context) = if use_stale {
                let snapshot = snapshots.remove(rng.gen_range(0..snapshots.len()));
                (snapshot.replica, snapshot.key, snapshot.read_ids, snapshot.context)
            } else {
                let replica = rng.gen_range(0..spec.replicas);
                let key = keys[rng.gen_range(0..keys.len())].clone();
                let read = cluster.get(replica, &key);
                let ids: Vec<u64> = read.iter_values().map(decode_id).collect();
                // Oracle check: returned siblings must be pairwise
                // causally incomparable.
                false_concurrency += oracle.false_concurrency(&key, &ids);
                if rng.gen_range(0..100u32) < 30 {
                    snapshots.push(Snapshot {
                        replica,
                        key: key.clone(),
                        read_ids: ids.clone(),
                        context: read.context().cloned(),
                    });
                    if snapshots.len() > 32 {
                        snapshots.remove(0);
                    }
                }
                (replica, key, ids, read.context().cloned())
            };
            let id = next_id;
            next_id += 1;
            let delete = rng.gen_range(0..100u32) < spec.delete_percent;
            if delete {
                cluster.delete(replica, &key, context.as_ref());
            } else {
                cluster.put(replica, &key, encode_id(id), context.as_ref());
            }
            oracle.record_write(id, &key, &read_ids, delete);
        }

        // Island-local anti-entropy: a few random intra-island pulls.
        for _ in 0..spec.replicas {
            let a = rng.gen_range(0..spec.replicas);
            let peers: Vec<usize> =
                (0..spec.replicas).filter(|&r| r != a && island_of[r] == island_of[a]).collect();
            if peers.is_empty() {
                continue;
            }
            let b = peers[rng.gen_range(0..peers.len())];
            cluster.anti_entropy(a, b);
            cluster.anti_entropy(b, a);
        }

        // Heal: merge the highest island into the lowest remaining one.
        if (round + 1) % heal_every == 0 {
            if let Some(&highest) = island_of.iter().max() {
                if highest > 0 {
                    for island in island_of.iter_mut() {
                        if *island == highest {
                            *island = highest - 1;
                        }
                    }
                }
            }
        }

        metadata_curve.push(cluster.metrics().mean_key_metadata_bits);
        let wire_now = cluster.gossip_stats();
        wire_curve.push(bytes_per_exchange(wire_mark, wire_now));
        wire_mark = wire_now;
    }

    // Heal everything and run sweeps until converged (bounded).
    for island in island_of.iter_mut() {
        *island = 0;
    }
    let mut converged = false;
    for _ in 0..spec.replicas * 2 + 4 {
        for a in 0..spec.replicas {
            for b in 0..spec.replicas {
                if a != b {
                    cluster.anti_entropy(a, b);
                }
            }
        }
        if cluster.converged() {
            converged = true;
            break;
        }
    }

    let settle_totals = cluster.gossip_stats();
    let settle_bytes = bytes_per_exchange(wire_mark, settle_totals);

    // Converged epochs: anti-entropy keeps running after convergence, and
    // what those idle exchanges cost is the protocol's steady-state wire
    // overhead — the whole digest for the full-frame baseline, the 8-byte
    // root probe for the adaptive wire.
    for _ in 0..CONVERGED_EPOCH_SWEEPS {
        for a in 0..spec.replicas {
            for b in 0..spec.replicas {
                if a != b {
                    cluster.anti_entropy(a, b);
                }
            }
        }
    }
    let converged_bytes = bytes_per_exchange(settle_totals, cluster.gossip_stats());

    // Quiescent-point compaction (snapshots are dead by now).
    snapshots.clear();
    let compaction = cluster.compact();

    // Compare the converged state with the oracle's maximal frontier.
    let mut lost_updates = 0usize;
    let mut resurrections = 0usize;
    for key in &keys {
        let expected = oracle.expected_live(key);
        let got: BTreeSet<u64> =
            cluster.get(0, key).values().iter().map(|v| decode_id(v)).collect();
        lost_updates += expected.difference(&got).count();
        resurrections += got.difference(&expected).count();
    }

    let wire_totals = cluster.gossip_stats();
    StoreSimReport {
        backend: backend_label,
        sessions,
        writes: (next_id - 1) as usize,
        false_concurrency,
        lost_updates,
        resurrections,
        converged,
        keys_recycled: compaction.keys_recycled + compaction.keys_dropped,
        final_metrics: cluster.metrics(),
        metadata_curve,
        profile: cluster.profile_snapshot(),
        wire: wire_report(wire_totals, wire_curve, settle_bytes, converged_bytes),
    }
}

/// A remembered read of the concurrent driver (key by index, so the
/// oracle stripe resolves without hashing).
struct ThreadSnapshot<B: StoreBackend> {
    replica: usize,
    key_index: usize,
    read_ids: Vec<u64>,
    context: Option<B::Clock>,
}

/// The concurrent driver behind [`run_store_sim`] for `spec.threads > 1`:
/// every epoch splits its client sessions *and* its intra-island
/// anti-entropy pulls across OS threads over the one shared cluster, so
/// writes, reads and gossip genuinely interleave. Each thread runs
/// independent causal sessions — its own RNG stream and its own
/// stale-context pool — and the oracle is striped per key (sessions never
/// cross keys, so the happens-before DAG shards cleanly and recording is
/// not a global serialization point).
///
/// A write is recorded in its key's oracle stripe *before* the put lands
/// in the cluster, so any concurrent reader that observes the value finds
/// its causal record already in place; the stripe mutex provides the
/// ordering. Schedules are intentionally nondeterministic; the oracle
/// verdict (no lost updates, no false concurrency, no resurrections,
/// convergence) must still be exact — this is the concurrency stress the
/// scaling benchmark gates on.
fn run_store_sim_concurrent<B: StoreBackend>(backend: B, spec: &StoreSimSpec) -> StoreSimReport {
    let threads = spec.threads;
    let backend_label = backend.label();
    let mut cluster = Cluster::with_config(backend, spec.cluster_config());
    if spec.profile {
        cluster.enable_profiling();
    }
    let keys: Vec<String> = (0..spec.keys.max(1)).map(|k| format!("key-{k}")).collect();
    let oracle: Vec<Mutex<KeyOracle>> =
        keys.iter().map(|_| Mutex::new(KeyOracle::default())).collect();
    let next_id = AtomicU64::new(1);
    let sessions = AtomicUsize::new(0);
    let false_concurrency = AtomicUsize::new(0);
    let mut pools: Vec<Vec<ThreadSnapshot<B>>> = (0..threads).map(|_| Vec::new()).collect();
    let mut island_of: Vec<usize> = (0..spec.replicas).map(|r| r % spec.islands.max(1)).collect();
    let heal_every = (spec.rounds / spec.islands.max(1)).max(1);
    let mut metadata_curve = Vec::with_capacity(spec.rounds);
    let mut wire_curve = Vec::with_capacity(spec.rounds);
    let mut wire_mark = cluster.gossip_stats();

    for round in 0..spec.rounds {
        let islands = island_of.clone();
        std::thread::scope(|scope| {
            for (t, pool) in pools.iter_mut().enumerate() {
                let (cluster, keys, oracle) = (&cluster, &keys, &oracle);
                let (next_id, sessions, false_concurrency) =
                    (&next_id, &sessions, &false_concurrency);
                let islands = &islands;
                scope.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(
                        spec.seed
                            ^ (round as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                            ^ ((t as u64 + 1) << 40),
                    );
                    let share = spec.ops_per_round / threads
                        + usize::from(t < spec.ops_per_round % threads);
                    for _ in 0..share {
                        let use_stale =
                            !pool.is_empty() && rng.gen_range(0..100u32) < spec.stale_percent;
                        let (replica, key_index, read_ids, context) = if use_stale {
                            let snapshot = pool.remove(rng.gen_range(0..pool.len()));
                            (
                                snapshot.replica,
                                snapshot.key_index,
                                snapshot.read_ids,
                                snapshot.context,
                            )
                        } else {
                            let replica = rng.gen_range(0..spec.replicas);
                            let key_index = rng.gen_range(0..keys.len());
                            let read = cluster.get(replica, &keys[key_index]);
                            let ids: Vec<u64> = read.iter_values().map(decode_id).collect();
                            let violations = oracle[key_index].lock().false_concurrency(&ids);
                            if violations > 0 {
                                false_concurrency.fetch_add(violations, Ordering::Relaxed);
                            }
                            if rng.gen_range(0..100u32) < 30 {
                                pool.push(ThreadSnapshot {
                                    replica,
                                    key_index,
                                    read_ids: ids.clone(),
                                    context: read.context().cloned(),
                                });
                                if pool.len() > 32 {
                                    pool.remove(0);
                                }
                            }
                            (replica, key_index, ids, read.context().cloned())
                        };
                        let id = next_id.fetch_add(1, Ordering::Relaxed);
                        let delete = rng.gen_range(0..100u32) < spec.delete_percent;
                        // Record before the write lands: a reader that sees
                        // the value finds its record already in place.
                        oracle[key_index].lock().record_write(id, &read_ids, delete);
                        if delete {
                            cluster.delete(replica, &keys[key_index], context.as_ref());
                        } else {
                            cluster.put(replica, &keys[key_index], encode_id(id), context.as_ref());
                        }
                        sessions.fetch_add(1, Ordering::Relaxed);
                    }
                    // This thread's share of the epoch's intra-island pulls,
                    // interleaved with the other threads' sessions.
                    let pulls = spec.replicas / threads + usize::from(t < spec.replicas % threads);
                    for _ in 0..pulls {
                        let a = rng.gen_range(0..spec.replicas);
                        let peers: Vec<usize> = (0..spec.replicas)
                            .filter(|&r| r != a && islands[r] == islands[a])
                            .collect();
                        if peers.is_empty() {
                            continue;
                        }
                        let b = peers[rng.gen_range(0..peers.len())];
                        cluster.anti_entropy(a, b);
                        cluster.anti_entropy(b, a);
                    }
                });
            }
        });
        // Heal: merge the highest island into the lowest remaining one.
        if (round + 1) % heal_every == 0 {
            if let Some(&highest) = island_of.iter().max() {
                if highest > 0 {
                    for island in island_of.iter_mut() {
                        if *island == highest {
                            *island = highest - 1;
                        }
                    }
                }
            }
        }
        metadata_curve.push(cluster.metrics().mean_key_metadata_bits);
        let wire_now = cluster.gossip_stats();
        wire_curve.push(bytes_per_exchange(wire_mark, wire_now));
        wire_mark = wire_now;
    }

    // Heal everything and settle serially, exactly like the serial driver.
    let mut converged = false;
    for _ in 0..spec.replicas * 2 + 4 {
        for a in 0..spec.replicas {
            for b in 0..spec.replicas {
                if a != b {
                    cluster.anti_entropy(a, b);
                }
            }
        }
        if cluster.converged() {
            converged = true;
            break;
        }
    }
    let settle_totals = cluster.gossip_stats();
    let settle_bytes = bytes_per_exchange(wire_mark, settle_totals);
    for _ in 0..CONVERGED_EPOCH_SWEEPS {
        for a in 0..spec.replicas {
            for b in 0..spec.replicas {
                if a != b {
                    cluster.anti_entropy(a, b);
                }
            }
        }
    }
    let converged_bytes = bytes_per_exchange(settle_totals, cluster.gossip_stats());
    pools.clear();
    let compaction = cluster.compact();

    let mut lost_updates = 0usize;
    let mut resurrections = 0usize;
    for (key, stripe) in keys.iter().zip(&oracle) {
        let expected = stripe.lock().expected_live();
        let got: BTreeSet<u64> = cluster.get(0, key).iter_values().map(decode_id).collect();
        lost_updates += expected.difference(&got).count();
        resurrections += got.difference(&expected).count();
    }

    let wire_totals = cluster.gossip_stats();
    StoreSimReport {
        backend: backend_label,
        sessions: sessions.into_inner(),
        writes: (next_id.into_inner() - 1) as usize,
        false_concurrency: false_concurrency.into_inner(),
        lost_updates,
        resurrections,
        converged,
        keys_recycled: compaction.keys_recycled + compaction.keys_dropped,
        final_metrics: cluster.metrics(),
        metadata_curve,
        profile: cluster.profile_snapshot(),
        wire: wire_report(wire_totals, wire_curve, settle_bytes, converged_bytes),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vstamp_store::{DynamicVvBackend, VstampBackend};

    #[test]
    fn partition_heal_is_exact_for_every_backend() {
        let spec = StoreSimSpec::partition_heal(6, 10, 42);
        for report in [
            run_store_sim(VstampBackend::gc(), &spec),
            run_store_sim(VstampBackend::eager(), &spec),
            run_store_sim(DynamicVvBackend::new(), &spec),
        ] {
            assert!(
                report.is_exact(),
                "{}: lost={} false_conc={} resurrect={} converged={}",
                report.backend,
                report.lost_updates,
                report.false_concurrency,
                report.resurrections,
                report.converged
            );
            assert!(report.writes > 0);
            assert_eq!(report.metadata_curve.len(), 10);
        }
    }

    #[test]
    fn churn_is_exact_for_every_backend() {
        let spec = StoreSimSpec::churn(4, 12, 7);
        for report in [
            run_store_sim(VstampBackend::gc(), &spec),
            run_store_sim(VstampBackend::eager(), &spec),
            run_store_sim(DynamicVvBackend::new(), &spec),
        ] {
            assert!(
                report.is_exact(),
                "{}: lost={} false_conc={} resurrect={} converged={}",
                report.backend,
                report.lost_updates,
                report.false_concurrency,
                report.resurrections,
                report.converged
            );
        }
    }

    #[test]
    fn gc_backend_keeps_metadata_below_the_baseline_growth() {
        // The headline store claim: version-stamp metadata adapts to the
        // frontier while dynamic-VV vectors grow with retired incarnations.
        let spec = StoreSimSpec::churn(4, 16, 3);
        let stamps = run_store_sim(VstampBackend::gc(), &spec);
        let dynamic = run_store_sim(DynamicVvBackend::new(), &spec);
        assert!(stamps.is_exact() && dynamic.is_exact());
        let stamp_final = stamps.metadata_curve.last().copied().unwrap_or(0.0);
        let dynamic_final = dynamic.metadata_curve.last().copied().unwrap_or(0.0);
        assert!(
            stamp_final < dynamic_final,
            "stamps {stamp_final:.0} bits vs dynamic-vv {dynamic_final:.0} bits"
        );
    }

    #[test]
    fn delta_frames_cut_wire_bytes_and_forced_misses_stay_exact() {
        let spec = StoreSimSpec::churn(4, 12, 7);
        for backend in ["stamps-gc", "dynamic-vv"] {
            let run = |spec: &StoreSimSpec| match backend {
                "stamps-gc" => run_store_sim(VstampBackend::gc(), spec),
                _ => run_store_sim(DynamicVvBackend::new(), spec),
            };
            let adaptive = run(&spec);
            let full = run(&spec.with_full_frames_only());
            let perturbed = run(&spec.with_perturbed_fingerprints());
            for (mode, report) in
                [("adaptive", &adaptive), ("full-only", &full), ("perturbed", &perturbed)]
            {
                assert!(
                    report.is_exact(),
                    "{backend}/{mode}: lost={} false_conc={} resurrect={} converged={}",
                    report.lost_updates,
                    report.false_concurrency,
                    report.resurrections,
                    report.converged
                );
            }
            assert!(adaptive.wire.delta_frames > 0, "{backend}: adaptive run must ship deltas");
            assert_eq!(full.wire.delta_frames, 0, "{backend}: baseline must not ship deltas");
            assert!(
                adaptive.wire.delta_bytes < full.wire.delta_bytes,
                "{backend}: adaptive {} bytes vs full-frame {} bytes",
                adaptive.wire.delta_bytes,
                full.wire.delta_bytes
            );
            assert!(
                perturbed.wire.nak_refetches > 0,
                "{backend}: perturbed fingerprints must force NAK refetches"
            );
            assert_eq!(spec.rounds, adaptive.wire.bytes_per_exchange_curve.len());
        }
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let spec = StoreSimSpec::partition_heal(4, 6, 11);
        let a = run_store_sim(VstampBackend::gc(), &spec);
        let b = run_store_sim(VstampBackend::gc(), &spec);
        assert_eq!(a, b);
    }

    #[test]
    fn read_repair_specs_stay_exact() {
        let spec = StoreSimSpec::partition_heal(6, 10, 42).with_read_repair();
        for report in [
            run_store_sim(VstampBackend::gc(), &spec),
            run_store_sim(DynamicVvBackend::new(), &spec),
        ] {
            assert!(
                report.is_exact(),
                "{}: lost={} false_conc={} resurrect={} converged={}",
                report.backend,
                report.lost_updates,
                report.false_concurrency,
                report.resurrections,
                report.converged
            );
        }
        let unbatched = run_store_sim(
            VstampBackend::gc(),
            &StoreSimSpec::churn(4, 12, 7).with_unbatched_apply(),
        );
        assert!(unbatched.is_exact());
    }

    /// Drives one partition/heal trace and returns, per monotonic-reads
    /// check, `(checks, cross_replica_checks, violations)`: a violation is
    /// a previously read put id that a later read by the same client (at
    /// any replica) neither returned nor covered causally.
    fn monotonic_read_trace(read_repair: bool) -> (usize, usize, usize) {
        let replicas = 4usize;
        let mut rng = StdRng::seed_from_u64(99);
        let mut config = ClusterConfig::new(replicas, 4);
        if read_repair {
            config = config.with_read_repair();
        }
        let cluster = Cluster::with_config(VstampBackend::gc(), config);
        let keys: Vec<String> = (0..4).map(|k| format!("key-{k}")).collect();
        let mut oracle = Oracle::default();
        let mut next_id = 1u64;
        // Per client, per key: the put ids and replica of the last read.
        let clients = 6usize;
        let mut last_read: Vec<BTreeMap<String, (usize, Vec<u64>)>> =
            vec![BTreeMap::new(); clients];
        // Two islands; anti-entropy stays island-local until the heal.
        let mut island_of: Vec<usize> = (0..replicas).map(|r| r % 2).collect();
        let rounds = 12usize;
        let (mut checks, mut cross, mut violations) = (0usize, 0usize, 0usize);
        for round in 0..rounds {
            for (client, seen) in last_read.iter_mut().enumerate() {
                // Clients hop replicas freely: reads cross the partition
                // even while gossip cannot.
                let replica = (client + round) % replicas;
                let key = keys[rng.gen_range(0..keys.len())].clone();
                let read = cluster.get(replica, &key);
                let ids: Vec<u64> = read.iter_values().map(decode_id).collect();
                if let Some((prev_replica, prev_ids)) = seen.get(&key) {
                    let key_oracle = oracle.by_key.get(&key).expect("key was read before");
                    for &earlier in prev_ids {
                        checks += 1;
                        if prev_replica != &replica {
                            cross += 1;
                        }
                        let still_visible = ids.contains(&earlier)
                            || ids.iter().any(|&now| key_oracle.covers(now, earlier));
                        if !still_visible {
                            violations += 1;
                        }
                    }
                }
                let id = next_id;
                next_id += 1;
                cluster.put(replica, &key, encode_id(id), read.context());
                oracle.record_write(id, &key, &ids, false);
                seen.insert(key, (replica, ids));
            }
            for a in 0..replicas {
                for b in 0..replicas {
                    if a != b && island_of[a] == island_of[b] {
                        cluster.anti_entropy(a, b);
                    }
                }
            }
            if round == rounds / 2 {
                for island in island_of.iter_mut() {
                    *island = 0;
                }
            }
        }
        (checks, cross, violations)
    }

    #[test]
    fn read_repair_gives_monotonic_reads_across_partition_heal() {
        // Without repair the trace demonstrably loses monotonicity when a
        // client's read hops across the partition; with repair every
        // previously read id stays present-or-covered at every replica.
        let (checks, cross, violations) = monotonic_read_trace(false);
        assert!(checks > 0 && cross > 0, "trace must exercise cross-replica reads");
        assert!(violations > 0, "without read repair the partition must show stale reads");
        let (checks, cross, violations) = monotonic_read_trace(true);
        assert!(checks > 0 && cross > 0, "trace must exercise cross-replica reads");
        assert_eq!(violations, 0, "read repair must make reads monotonic");
    }

    #[test]
    fn gc_watermarks_trade_no_causal_exactness() {
        use vstamp_store::GcWatermarks;
        // The amortization claim, oracle-enforced: collapse-every-merge and
        // heavily deferred collapse run the identical schedule with zero
        // lost updates, false concurrency or resurrections, and once
        // anti-entropy settles (full sweeps + forced flush at the
        // compaction boundary) the deferred run's metadata lands within a
        // whisker of the aggressive run's.
        for spec in [StoreSimSpec::partition_heal(5, 10, 97), StoreSimSpec::churn(4, 14, 23)] {
            let aggressive =
                run_store_sim(VstampBackend::gc_with(GcWatermarks::aggressive()), &spec);
            let lazy = run_store_sim(VstampBackend::gc_with(GcWatermarks::lazy()), &spec);
            for report in [&aggressive, &lazy] {
                assert!(
                    report.is_exact(),
                    "watermark run must stay exact: lost={} false_conc={} resurrect={} converged={}",
                    report.lost_updates,
                    report.false_concurrency,
                    report.resurrections,
                    report.converged
                );
            }
            assert_eq!(aggressive.keys_recycled, lazy.keys_recycled);
            let (a, l) = (
                aggressive.final_metrics.mean_key_metadata_bits,
                lazy.final_metrics.mean_key_metadata_bits,
            );
            assert!(
                l <= a * 1.25 + 64.0,
                "deferred GC must converge towards aggressive metadata: lazy {l:.1} vs aggressive {a:.1} bits"
            );
        }
    }

    #[test]
    fn deferred_gc_converges_to_identical_metadata_once_fully_settled() {
        use vstamp_store::{Cluster, GcWatermarks, VstampBackend};
        // When every key fully settles (all siblings resolved, cluster
        // converged), compaction re-mints each key's universe
        // deterministically — so aggressive and lazy watermarks end with
        // byte-identical metadata, whatever their collapse schedules did
        // in between.
        let run = |watermarks: GcWatermarks| {
            let mut cluster = Cluster::new(VstampBackend::gc_with(watermarks), 3, 2);
            for round in 0..10u8 {
                for replica in 0..3usize {
                    for key in ["a", "b"] {
                        let read = cluster.get(replica, key);
                        cluster.put(replica, key, vec![round, replica as u8], read.context());
                    }
                }
                cluster.anti_entropy(usize::from(round) % 3, (usize::from(round) + 1) % 3);
            }
            // Sync fully so the resolver's context covers every sibling,
            // resolve every key at one replica, then settle fully.
            for _ in 0..4 {
                for a in 0..3 {
                    for b in 0..3 {
                        if a != b {
                            cluster.anti_entropy(a, b);
                        }
                    }
                }
            }
            for key in ["a", "b"] {
                let read = cluster.get(0, key);
                cluster.put(0, key, b"settled".to_vec(), read.context());
            }
            for _ in 0..4 {
                for a in 0..3 {
                    for b in 0..3 {
                        if a != b {
                            cluster.anti_entropy(a, b);
                        }
                    }
                }
            }
            assert!(cluster.converged());
            let stats = cluster.compact();
            assert_eq!(stats.keys_recycled, 2, "fully-settled keys must re-mint");
            cluster.metrics()
        };
        let aggressive = run(GcWatermarks::aggressive());
        let lazy = run(GcWatermarks::lazy());
        assert_eq!(aggressive.clock_bits_total, lazy.clock_bits_total);
        assert_eq!(aggressive.element_bits_total, lazy.element_bits_total);
        assert_eq!(aggressive.mean_key_metadata_bits, lazy.mean_key_metadata_bits);
    }

    #[test]
    fn profiled_runs_report_section_breakdown() {
        let spec = StoreSimSpec::partition_heal(4, 6, 5).with_profile();
        let report = run_store_sim(VstampBackend::gc(), &spec);
        assert!(report.is_exact());
        assert!(report.profile.join.calls > 0);
        assert!(report.profile.codec.calls > 0);
        // Unprofiled runs stay at zero.
        let quiet = run_store_sim(VstampBackend::gc(), &StoreSimSpec::partition_heal(4, 6, 5));
        assert_eq!(quiet.profile.join.calls, 0);
    }
}
