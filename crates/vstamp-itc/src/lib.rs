//! # vstamp-itc — Interval Tree Clocks
//!
//! The paper's conclusion calls for "the search for a more compact
//! (possibly bound) form of version vectors on settings with fixed
//! identifiers and frontier ordering" and for decentralized identifier
//! schemes; the direct successor of that research line is **Interval Tree
//! Clocks** (Almeida, Baquero, Fonte 2008). This crate implements ITC as the
//! reproduction's extension deliverable, so the evaluation can compare the
//! 2002 mechanism with its 2008 refinement over identical traces
//! (experiment E10).
//!
//! An ITC stamp is a pair of trees:
//!
//! * an [`IdTree`] describing which part of the unit interval the replica
//!   owns (the analogue of the version stamp's id component, with the same
//!   fork-splits / join-collapses dynamics);
//! * an [`EventTree`] counting, piecewise over the interval, how many events
//!   the replica has seen (the analogue of the update component, with
//!   counters reintroduced so causal pasts can be summarised compactly).
//!
//! ```
//! use vstamp_itc::ItcStamp;
//! use vstamp_core::Relation;
//!
//! let (a, b) = ItcStamp::seed().fork();
//! let a = a.event();
//! assert_eq!(a.relation(&b), Relation::Dominates);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod event;
pub mod id;
pub mod stamp;

pub use event::EventTree;
pub use id::IdTree;
pub use stamp::{ItcMechanism, ItcStamp};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<IdTree>();
        assert_send_sync::<EventTree>();
        assert_send_sync::<ItcStamp>();
        assert_send_sync::<ItcMechanism>();
    }
}
