//! Event trees of Interval Tree Clocks.
//!
//! An event tree maps the unit interval to a number of observed events,
//! piecewise: a leaf `n` means "the whole subinterval has seen `n` events";
//! a node `(n, l, r)` adds `n` to whatever its two halves record. Event
//! trees form a join semilattice under pointwise maximum, with a pointwise
//! `≤` — the ITC counterpart of the update component of a version stamp.

use core::fmt;

/// An ITC event tree.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum EventTree {
    /// The whole subinterval has observed this many events.
    Leaf(u64),
    /// `base` events everywhere in the subinterval, plus what the two halves
    /// record.
    Node(u64, Box<EventTree>, Box<EventTree>),
}

impl EventTree {
    /// The event tree of a fresh system: zero events everywhere.
    #[must_use]
    pub fn zero() -> Self {
        EventTree::Leaf(0)
    }

    /// A constant tree (`n` events everywhere).
    #[must_use]
    pub fn leaf(n: u64) -> Self {
        EventTree::Leaf(n)
    }

    /// Smart constructor that keeps trees in normal form: two equal leaf
    /// children collapse into their parent and the minimum of the children
    /// is lifted into the base.
    #[must_use]
    pub fn node(base: u64, left: EventTree, right: EventTree) -> Self {
        match (&left, &right) {
            (EventTree::Leaf(l), EventTree::Leaf(r)) if l == r => EventTree::Leaf(base + l),
            _ => {
                let m = left.min_value().min(right.min_value());
                EventTree::Node(base + m, Box::new(left.sunk(m)), Box::new(right.sunk(m)))
            }
        }
    }

    /// The base value at the root.
    #[must_use]
    pub fn base(&self) -> u64 {
        match self {
            EventTree::Leaf(n) | EventTree::Node(n, _, _) => *n,
        }
    }

    /// Adds `n` to the root value ("lift").
    #[must_use]
    pub fn lifted(&self, n: u64) -> EventTree {
        match self {
            EventTree::Leaf(m) => EventTree::Leaf(m + n),
            EventTree::Node(m, l, r) => EventTree::Node(m + n, l.clone(), r.clone()),
        }
    }

    /// Subtracts `n` from the root value ("sink").
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds the root value.
    #[must_use]
    pub fn sunk(&self, n: u64) -> EventTree {
        match self {
            EventTree::Leaf(m) => EventTree::Leaf(m.checked_sub(n).expect("sink below zero")),
            EventTree::Node(m, l, r) => {
                EventTree::Node(m.checked_sub(n).expect("sink below zero"), l.clone(), r.clone())
            }
        }
    }

    /// The smallest number of events observed anywhere in the interval.
    #[must_use]
    pub fn min_value(&self) -> u64 {
        match self {
            EventTree::Leaf(n) => *n,
            EventTree::Node(n, l, r) => n + l.min_value().min(r.min_value()),
        }
    }

    /// The largest number of events observed anywhere in the interval.
    #[must_use]
    pub fn max_value(&self) -> u64 {
        match self {
            EventTree::Leaf(n) => *n,
            EventTree::Node(n, l, r) => n + l.max_value().max(r.max_value()),
        }
    }

    /// Returns `true` when the tree is in normal form (no collapsible node
    /// and every node's children have a zero minimum).
    #[must_use]
    pub fn is_normalized(&self) -> bool {
        match self {
            EventTree::Leaf(_) => true,
            EventTree::Node(_, l, r) => {
                let collapsible = matches!((l.as_ref(), r.as_ref()), (EventTree::Leaf(a), EventTree::Leaf(b)) if a == b);
                !collapsible
                    && l.min_value().min(r.min_value()) == 0
                    && l.is_normalized()
                    && r.is_normalized()
            }
        }
    }

    /// Rebuilds the tree in normal form.
    #[must_use]
    pub fn normalized(&self) -> EventTree {
        match self {
            EventTree::Leaf(n) => EventTree::Leaf(*n),
            EventTree::Node(n, l, r) => EventTree::node(*n, l.normalized(), r.normalized()),
        }
    }

    /// Pointwise `≤` — "every part of the interval has seen at most as many
    /// events as in `other`".
    #[must_use]
    pub fn leq(&self, other: &EventTree) -> bool {
        match (self, other) {
            (EventTree::Leaf(a), EventTree::Leaf(b)) => a <= b,
            (EventTree::Leaf(a), EventTree::Node(b, _, _)) => a <= b,
            (EventTree::Node(a, l, r), EventTree::Leaf(b)) => {
                a <= b
                    && l.lifted(*a).leq(&EventTree::Leaf(*b))
                    && r.lifted(*a).leq(&EventTree::Leaf(*b))
            }
            (EventTree::Node(a, l1, r1), EventTree::Node(b, l2, r2)) => {
                a <= b && l1.lifted(*a).leq(&l2.lifted(*b)) && r1.lifted(*a).leq(&r2.lifted(*b))
            }
        }
    }

    /// Pointwise maximum — the join of knowledge.
    #[must_use]
    pub fn join(&self, other: &EventTree) -> EventTree {
        match (self, other) {
            (EventTree::Leaf(a), EventTree::Leaf(b)) => EventTree::Leaf(*a.max(b)),
            (EventTree::Leaf(a), node) => {
                // Expand the leaf into an equivalent (non-normal) node so the
                // structural case below applies; the smart constructor cannot
                // be used here because it would collapse straight back.
                let expanded =
                    EventTree::Node(*a, Box::new(EventTree::Leaf(0)), Box::new(EventTree::Leaf(0)));
                expanded.join(node)
            }
            (node, EventTree::Leaf(b)) => {
                let expanded =
                    EventTree::Node(*b, Box::new(EventTree::Leaf(0)), Box::new(EventTree::Leaf(0)));
                node.join(&expanded)
            }
            (EventTree::Node(a, l1, r1), EventTree::Node(b, l2, r2)) => {
                if a > b {
                    return other.join(self);
                }
                let shift = b - a;
                EventTree::node(*a, l1.join(&l2.lifted(shift)), r1.join(&r2.lifted(shift)))
            }
        }
    }

    /// Number of nodes in the tree (a space metric).
    #[must_use]
    pub fn node_count(&self) -> usize {
        match self {
            EventTree::Leaf(_) => 1,
            EventTree::Node(_, l, r) => 1 + l.node_count() + r.node_count(),
        }
    }
}

impl Default for EventTree {
    fn default() -> Self {
        EventTree::zero()
    }
}

impl fmt::Display for EventTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EventTree::Leaf(n) => write!(f, "{n}"),
            EventTree::Node(n, l, r) => write!(f, "({n}, {l}, {r})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(base: u64, l: EventTree, r: EventTree) -> EventTree {
        EventTree::node(base, l, r)
    }

    #[test]
    fn leaves_and_constructors() {
        assert_eq!(EventTree::zero(), EventTree::Leaf(0));
        assert_eq!(EventTree::default(), EventTree::zero());
        assert_eq!(EventTree::leaf(4).base(), 4);
        assert_eq!(EventTree::leaf(4).to_string(), "4");
        assert_eq!(EventTree::leaf(3).min_value(), 3);
        assert_eq!(EventTree::leaf(3).max_value(), 3);
        assert_eq!(EventTree::leaf(3).node_count(), 1);
    }

    #[test]
    fn node_constructor_normalizes() {
        // equal leaf children collapse
        assert_eq!(node(2, EventTree::leaf(1), EventTree::leaf(1)), EventTree::Leaf(3));
        // minima are lifted into the base
        let n = node(1, EventTree::leaf(2), EventTree::leaf(5));
        assert_eq!(
            n,
            EventTree::Node(3, Box::new(EventTree::Leaf(0)), Box::new(EventTree::Leaf(3)))
        );
        assert!(n.is_normalized());
        assert_eq!(n.min_value(), 3);
        assert_eq!(n.max_value(), 6);
        assert_eq!(n.to_string(), "(3, 0, 3)");
    }

    #[test]
    fn lift_and_sink() {
        let n = node(0, EventTree::leaf(0), EventTree::leaf(2));
        assert_eq!(n.lifted(3).base(), 3);
        assert_eq!(n.lifted(3).sunk(3), n);
        assert_eq!(EventTree::leaf(5).sunk(2), EventTree::leaf(3));
    }

    #[test]
    #[should_panic(expected = "sink below zero")]
    fn sink_below_zero_panics() {
        let _ = EventTree::leaf(1).sunk(2);
    }

    #[test]
    fn normalized_rebuilds_raw_trees() {
        let raw = EventTree::Node(
            1,
            Box::new(EventTree::Node(
                0,
                Box::new(EventTree::Leaf(2)),
                Box::new(EventTree::Leaf(2)),
            )),
            Box::new(EventTree::Leaf(3)),
        );
        assert!(!raw.is_normalized());
        let norm = raw.normalized();
        assert!(norm.is_normalized());
        assert_eq!(norm.min_value(), raw.min_value());
        assert_eq!(norm.max_value(), raw.max_value());
        // normalization is idempotent
        assert_eq!(norm.normalized(), norm);
    }

    #[test]
    fn leq_is_pointwise() {
        let a = node(0, EventTree::leaf(0), EventTree::leaf(2));
        let b = node(0, EventTree::leaf(1), EventTree::leaf(2));
        assert!(a.leq(&b));
        assert!(!b.leq(&a));
        assert!(a.leq(&a));
        assert!(!EventTree::leaf(2).leq(&a));
        assert!(EventTree::leaf(0).leq(&a));
        // leaf vs node comparisons in both directions
        assert!(a.leq(&EventTree::leaf(2)));
        assert!(!a.leq(&EventTree::leaf(1)));
        let concurrent = node(0, EventTree::leaf(3), EventTree::leaf(0));
        assert!(!a.leq(&concurrent) && !concurrent.leq(&a));
    }

    #[test]
    fn join_is_pointwise_max() {
        let a = node(0, EventTree::leaf(0), EventTree::leaf(2));
        let b = node(0, EventTree::leaf(3), EventTree::leaf(0));
        let j = a.join(&b);
        assert!(a.leq(&j) && b.leq(&j));
        assert_eq!(j, node(0, EventTree::leaf(3), EventTree::leaf(2)));
        // join with leaves
        assert_eq!(EventTree::leaf(1).join(&EventTree::leaf(4)), EventTree::leaf(4));
        assert_eq!(a.join(&EventTree::leaf(3)), EventTree::leaf(3));
        assert_eq!(EventTree::leaf(3).join(&a), EventTree::leaf(3));
        // commutative, associative, idempotent
        let c = node(1, EventTree::leaf(0), EventTree::leaf(5));
        assert_eq!(a.join(&b), b.join(&a));
        assert_eq!(a.join(&b).join(&c), a.join(&b.join(&c)));
        assert_eq!(a.join(&a), a);
        // results are normalized
        assert!(j.is_normalized());
        assert!(a.join(&c).is_normalized());
    }

    #[test]
    fn join_with_different_bases() {
        let a = EventTree::Node(2, Box::new(EventTree::Leaf(0)), Box::new(EventTree::Leaf(1)));
        let b = EventTree::Node(1, Box::new(EventTree::Leaf(4)), Box::new(EventTree::Leaf(0)));
        let j = a.join(&b);
        assert!(a.leq(&j) && b.leq(&j));
        assert_eq!(j.max_value(), 5);
        assert!(j.min_value() >= 2, "pointwise max cannot fall below either minimum");
        assert!(j.is_normalized());
    }

    #[test]
    fn leq_iff_join_absorbs() {
        let samples = [
            EventTree::leaf(0),
            EventTree::leaf(2),
            node(0, EventTree::leaf(0), EventTree::leaf(2)),
            node(1, EventTree::leaf(0), EventTree::leaf(3)),
            node(0, EventTree::leaf(4), EventTree::leaf(0)),
            node(0, node(0, EventTree::leaf(0), EventTree::leaf(1)), EventTree::leaf(2)),
        ];
        for a in &samples {
            for b in &samples {
                assert_eq!(a.leq(b), a.join(b) == b.normalized(), "a={a} b={b}");
            }
        }
    }
}
