//! Identity trees of Interval Tree Clocks.
//!
//! An ITC identity describes which part of the unit interval a replica owns,
//! as a binary tree whose leaves are either owned (`One`) or not owned
//! (`Zero`). The seed replica owns the whole interval; `split` halves the
//! ownership of some owned region between the two descendants of a fork and
//! `sum` merges ownership on joins — the direct descendant of the version
//! stamps idea of appending bits to identity strings and collapsing sibling
//! pairs.

use core::fmt;

/// An ITC identity tree.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum IdTree {
    /// This whole subtree of the interval is not owned.
    Zero,
    /// This whole subtree of the interval is owned.
    One,
    /// Ownership differs between the two halves.
    Node(Box<IdTree>, Box<IdTree>),
}

impl IdTree {
    /// The identity owning the entire interval (the seed replica).
    #[must_use]
    pub fn one() -> Self {
        IdTree::One
    }

    /// The identity owning nothing (an anonymous stamp).
    #[must_use]
    pub fn zero() -> Self {
        IdTree::Zero
    }

    /// Smart constructor that keeps trees in normal form:
    /// `Node(Zero, Zero) → Zero`, `Node(One, One) → One`.
    #[must_use]
    pub fn node(left: IdTree, right: IdTree) -> Self {
        match (&left, &right) {
            (IdTree::Zero, IdTree::Zero) => IdTree::Zero,
            (IdTree::One, IdTree::One) => IdTree::One,
            _ => IdTree::Node(Box::new(left), Box::new(right)),
        }
    }

    /// Returns `true` when the identity owns nothing.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        matches!(self, IdTree::Zero)
    }

    /// Returns `true` when the identity owns the whole interval.
    #[must_use]
    pub fn is_one(&self) -> bool {
        matches!(self, IdTree::One)
    }

    /// Returns `true` when the tree contains no `Node(Zero, Zero)` or
    /// `Node(One, One)` pattern.
    #[must_use]
    pub fn is_normalized(&self) -> bool {
        match self {
            IdTree::Zero | IdTree::One => true,
            IdTree::Node(l, r) => {
                !matches!(
                    (l.as_ref(), r.as_ref()),
                    (IdTree::Zero, IdTree::Zero) | (IdTree::One, IdTree::One)
                ) && l.is_normalized()
                    && r.is_normalized()
            }
        }
    }

    /// Rebuilds the tree in normal form.
    #[must_use]
    pub fn normalized(&self) -> IdTree {
        match self {
            IdTree::Zero => IdTree::Zero,
            IdTree::One => IdTree::One,
            IdTree::Node(l, r) => IdTree::node(l.normalized(), r.normalized()),
        }
    }

    /// Splits the identity into two disjoint identities whose sum is the
    /// original — the identity half of a fork.
    #[must_use]
    pub fn split(&self) -> (IdTree, IdTree) {
        match self {
            IdTree::Zero => (IdTree::Zero, IdTree::Zero),
            IdTree::One => {
                (IdTree::node(IdTree::One, IdTree::Zero), IdTree::node(IdTree::Zero, IdTree::One))
            }
            IdTree::Node(l, r) => match (l.as_ref(), r.as_ref()) {
                (IdTree::Zero, right) => {
                    let (r1, r2) = right.split();
                    (IdTree::node(IdTree::Zero, r1), IdTree::node(IdTree::Zero, r2))
                }
                (left, IdTree::Zero) => {
                    let (l1, l2) = left.split();
                    (IdTree::node(l1, IdTree::Zero), IdTree::node(l2, IdTree::Zero))
                }
                (left, right) => (
                    IdTree::node(left.clone(), IdTree::Zero),
                    IdTree::node(IdTree::Zero, right.clone()),
                ),
            },
        }
    }

    /// Merges two disjoint identities — the identity half of a join.
    ///
    /// # Panics
    ///
    /// Panics if the identities overlap (both own some region), which cannot
    /// happen for identities produced by `split` from a common ancestor.
    #[must_use]
    pub fn sum(&self, other: &IdTree) -> IdTree {
        match (self, other) {
            (IdTree::Zero, o) => o.clone(),
            (s, IdTree::Zero) => s.clone(),
            (IdTree::Node(l1, r1), IdTree::Node(l2, r2)) => IdTree::node(l1.sum(l2), r1.sum(r2)),
            _ => panic!("cannot sum overlapping ITC identities"),
        }
    }

    /// Returns `true` when the two identities own no common region.
    #[must_use]
    pub fn is_disjoint_with(&self, other: &IdTree) -> bool {
        match (self, other) {
            (IdTree::Zero, _) | (_, IdTree::Zero) => true,
            (IdTree::One, o) => o.is_zero(),
            (s, IdTree::One) => s.is_zero(),
            (IdTree::Node(l1, r1), IdTree::Node(l2, r2)) => {
                l1.is_disjoint_with(l2) && r1.is_disjoint_with(r2)
            }
        }
    }

    /// Number of nodes in the tree (a space metric).
    #[must_use]
    pub fn node_count(&self) -> usize {
        match self {
            IdTree::Zero | IdTree::One => 1,
            IdTree::Node(l, r) => 1 + l.node_count() + r.node_count(),
        }
    }
}

impl Default for IdTree {
    /// The default identity is the seed (`One`).
    fn default() -> Self {
        IdTree::One
    }
}

impl fmt::Display for IdTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IdTree::Zero => f.write_str("0"),
            IdTree::One => f.write_str("1"),
            IdTree::Node(l, r) => write!(f, "({l}, {r})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_and_anonymous() {
        assert!(IdTree::one().is_one());
        assert!(IdTree::zero().is_zero());
        assert_eq!(IdTree::default(), IdTree::One);
        assert_eq!(IdTree::one().to_string(), "1");
        assert_eq!(IdTree::zero().node_count(), 1);
    }

    #[test]
    fn node_constructor_normalizes() {
        assert_eq!(IdTree::node(IdTree::Zero, IdTree::Zero), IdTree::Zero);
        assert_eq!(IdTree::node(IdTree::One, IdTree::One), IdTree::One);
        let mixed = IdTree::node(IdTree::One, IdTree::Zero);
        assert!(matches!(mixed, IdTree::Node(_, _)));
        assert!(mixed.is_normalized());
        assert_eq!(mixed.to_string(), "(1, 0)");
    }

    #[test]
    fn normalized_rebuilds_raw_trees() {
        let raw = IdTree::Node(
            Box::new(IdTree::Node(Box::new(IdTree::One), Box::new(IdTree::One))),
            Box::new(IdTree::Zero),
        );
        assert!(!raw.is_normalized());
        let norm = raw.normalized();
        assert!(norm.is_normalized());
        assert_eq!(norm, IdTree::node(IdTree::One, IdTree::Zero));
    }

    #[test]
    fn split_of_seed_gives_halves() {
        let (a, b) = IdTree::one().split();
        assert_eq!(a, IdTree::node(IdTree::One, IdTree::Zero));
        assert_eq!(b, IdTree::node(IdTree::Zero, IdTree::One));
        assert!(a.is_disjoint_with(&b));
        assert_eq!(a.sum(&b), IdTree::One);
    }

    #[test]
    fn split_is_disjoint_and_sums_back_recursively() {
        // Repeatedly split the left piece and check disjointness + sum.
        let mut pieces = vec![IdTree::one()];
        for _ in 0..6 {
            let piece = pieces.remove(0);
            let (a, b) = piece.split();
            for other in &pieces {
                assert!(a.is_disjoint_with(other));
                assert!(b.is_disjoint_with(other));
            }
            assert!(a.is_disjoint_with(&b));
            pieces.push(a);
            pieces.push(b);
        }
        // Summing every piece back recovers the seed.
        let total = pieces.iter().fold(IdTree::zero(), |acc, p| acc.sum(p));
        assert_eq!(total, IdTree::One);
        for p in &pieces {
            assert!(p.is_normalized());
        }
    }

    #[test]
    fn split_of_zero_is_zero() {
        let (a, b) = IdTree::zero().split();
        assert!(a.is_zero() && b.is_zero());
    }

    #[test]
    fn split_descends_into_owned_half() {
        let (left_half, right_half) = IdTree::one().split();
        let (a, b) = left_half.split();
        // both descendants still own only parts of the left half
        assert!(a.is_disjoint_with(&right_half));
        assert!(b.is_disjoint_with(&right_half));
        assert_eq!(a.sum(&b), left_half);
        let (c, d) = right_half.split();
        assert_eq!(c.sum(&d), right_half);
        assert!(c.is_disjoint_with(&a));
    }

    #[test]
    #[should_panic(expected = "overlapping")]
    fn sum_of_overlapping_identities_panics() {
        let _ = IdTree::one().sum(&IdTree::one());
    }

    #[test]
    fn disjointness_checks() {
        let (a, b) = IdTree::one().split();
        assert!(a.is_disjoint_with(&b));
        assert!(!a.is_disjoint_with(&IdTree::one()));
        assert!(IdTree::zero().is_disjoint_with(&IdTree::one()));
        assert!(!IdTree::one().is_disjoint_with(&a));
        assert!(IdTree::one().is_disjoint_with(&IdTree::zero()));
    }
}
