//! Interval Tree Clock stamps: an identity tree plus an event tree.
//!
//! The fork–event–join model of ITC is the same transition system as the
//! paper's fork–update–join; the `event` operation records an update by
//! inflating the event tree only inside the region the identity owns,
//! preferring to *fill* (raise owned regions up to the level of the
//! surroundings, which keeps the tree small) and *growing* (adding a new
//! node) only when filling changes nothing.

use core::fmt;

use vstamp_core::{Mechanism, Relation};

use crate::event::EventTree;
use crate::id::IdTree;

/// An Interval Tree Clock stamp `(id, event)`.
///
/// # Examples
///
/// ```
/// use vstamp_itc::ItcStamp;
/// use vstamp_core::Relation;
///
/// let seed = ItcStamp::seed();
/// let (a, b) = seed.fork();
/// let a = a.event();
/// assert_eq!(a.relation(&b), Relation::Dominates);
/// let b = b.event();
/// assert_eq!(a.relation(&b), Relation::Concurrent);
/// let merged = a.join(&b);
/// assert_eq!(merged.relation(&a), Relation::Dominates);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ItcStamp {
    id: IdTree,
    event: EventTree,
}

impl ItcStamp {
    /// The seed stamp: the whole identity interval, zero events.
    #[must_use]
    pub fn seed() -> Self {
        ItcStamp { id: IdTree::one(), event: EventTree::zero() }
    }

    /// Builds a stamp from explicit components.
    #[must_use]
    pub fn from_parts(id: IdTree, event: EventTree) -> Self {
        ItcStamp { id: id.normalized(), event: event.normalized() }
    }

    /// The identity component.
    #[must_use]
    pub fn id(&self) -> &IdTree {
        &self.id
    }

    /// The event component.
    #[must_use]
    pub fn event_tree(&self) -> &EventTree {
        &self.event
    }

    /// Returns `true` when this stamp owns no identity (a read-only
    /// "anonymous" stamp).
    #[must_use]
    pub fn is_anonymous(&self) -> bool {
        self.id.is_zero()
    }

    /// The fork operation: splits the identity, duplicates the event tree.
    #[must_use]
    pub fn fork(&self) -> (ItcStamp, ItcStamp) {
        let (left, right) = self.id.split();
        (
            ItcStamp { id: left, event: self.event.clone() },
            ItcStamp { id: right, event: self.event.clone() },
        )
    }

    /// An anonymous copy of the stamp (`peek`): no identity, same knowledge.
    #[must_use]
    pub fn peek(&self) -> ItcStamp {
        ItcStamp { id: IdTree::zero(), event: self.event.clone() }
    }

    /// The join operation: sums identities, joins event trees.
    ///
    /// # Panics
    ///
    /// Panics if the identities overlap, which cannot happen for stamps
    /// forked from a common ancestor.
    #[must_use]
    pub fn join(&self, other: &ItcStamp) -> ItcStamp {
        ItcStamp { id: self.id.sum(&other.id), event: self.event.join(&other.event) }
    }

    /// The event (update) operation: records one new event in the region the
    /// identity owns, by filling if possible and growing otherwise.
    ///
    /// # Panics
    ///
    /// Panics on an anonymous stamp (no identity to record the event under),
    /// mirroring ITC's precondition.
    #[must_use]
    pub fn event(&self) -> ItcStamp {
        assert!(!self.id.is_zero(), "cannot record an event on an anonymous stamp");
        let filled = fill(&self.id, &self.event);
        let event = if filled != self.event {
            filled
        } else {
            let (grown, _cost) = grow(&self.id, &self.event);
            grown
        };
        ItcStamp { id: self.id.clone(), event }
    }

    /// Synchronization: join followed by fork.
    #[must_use]
    pub fn sync(&self, other: &ItcStamp) -> (ItcStamp, ItcStamp) {
        self.join(other).fork()
    }

    /// Whether this stamp's knowledge is included in `other`'s.
    #[must_use]
    pub fn leq(&self, other: &ItcStamp) -> bool {
        self.event.leq(&other.event)
    }

    /// Classifies two coexisting stamps.
    #[must_use]
    pub fn relation(&self, other: &ItcStamp) -> Relation {
        Relation::from_leq(self.leq(other), other.leq(self))
    }

    /// A space metric: total nodes across both trees, at roughly 2 bits of
    /// structure per identity node and 2 bits plus a counter per event node.
    #[must_use]
    pub fn size_bits(&self) -> usize {
        self.id.node_count() * 2 + self.event.node_count() * (2 + 8)
    }
}

impl Default for ItcStamp {
    fn default() -> Self {
        ItcStamp::seed()
    }
}

impl fmt::Display for ItcStamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({} ; {})", self.id, self.event)
    }
}

/// The fill operation of ITC: raise the parts of the event tree owned by the
/// identity up to the level of their surroundings (never inventing events
/// beyond the current maximum), which simplifies the tree.
fn fill(id: &IdTree, event: &EventTree) -> EventTree {
    match (id, event) {
        (IdTree::Zero, e) => e.clone(),
        (IdTree::One, e) => EventTree::leaf(e.max_value()),
        (_, EventTree::Leaf(n)) => EventTree::Leaf(*n),
        (IdTree::Node(il, ir), EventTree::Node(n, el, er)) => match (il.as_ref(), ir.as_ref()) {
            (IdTree::One, _) => {
                let er_filled = fill(ir, er);
                let left_level = el.max_value().max(er_filled.min_value());
                EventTree::node(*n, EventTree::leaf(left_level), er_filled)
            }
            (_, IdTree::One) => {
                let el_filled = fill(il, el);
                let right_level = er.max_value().max(el_filled.min_value());
                EventTree::node(*n, el_filled, EventTree::leaf(right_level))
            }
            _ => EventTree::node(*n, fill(il, el), fill(ir, er)),
        },
    }
}

/// The grow operation of ITC: add one event somewhere inside the owned
/// region, choosing the cheapest place (fewest new nodes, shallowest).
/// Returns the new tree and the cost of the chosen growth.
fn grow(id: &IdTree, event: &EventTree) -> (EventTree, u64) {
    const EXPAND_COST: u64 = 1000;
    match (id, event) {
        (IdTree::One, EventTree::Leaf(n)) => (EventTree::Leaf(n + 1), 0),
        (_, EventTree::Leaf(n)) => {
            let expanded =
                EventTree::Node(*n, Box::new(EventTree::Leaf(0)), Box::new(EventTree::Leaf(0)));
            let (grown, cost) = grow(id, &expanded);
            (grown, cost + EXPAND_COST)
        }
        (IdTree::Node(il, ir), EventTree::Node(n, el, er)) => match (il.as_ref(), ir.as_ref()) {
            (IdTree::Zero, _) => {
                let (er_grown, cost) = grow(ir, er);
                (EventTree::node(*n, el.as_ref().clone(), er_grown), cost + 1)
            }
            (_, IdTree::Zero) => {
                let (el_grown, cost) = grow(il, el);
                (EventTree::node(*n, el_grown, er.as_ref().clone()), cost + 1)
            }
            _ => {
                let (el_grown, left_cost) = grow(il, el);
                let (er_grown, right_cost) = grow(ir, er);
                if left_cost <= right_cost {
                    (EventTree::node(*n, el_grown, er.as_ref().clone()), left_cost + 1)
                } else {
                    (EventTree::node(*n, el.as_ref().clone(), er_grown), right_cost + 1)
                }
            }
        },
        (IdTree::Zero, _) | (IdTree::One, _) => {
            unreachable!("grow is only called with an owning identity over a node")
        }
    }
}

/// The Interval Tree Clock mechanism, driven by the same fork/join/update
/// traces as every other mechanism in this reproduction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ItcMechanism;

impl ItcMechanism {
    /// Creates the mechanism (stateless: ITC needs no global services).
    #[must_use]
    pub fn new() -> Self {
        ItcMechanism
    }
}

impl Mechanism for ItcMechanism {
    type Element = ItcStamp;

    fn mechanism_name(&self) -> &'static str {
        "interval-tree-clocks"
    }

    fn initial(&mut self) -> Self::Element {
        ItcStamp::seed()
    }

    fn update(&mut self, element: &Self::Element) -> Self::Element {
        element.event()
    }

    fn fork(&mut self, element: &Self::Element) -> (Self::Element, Self::Element) {
        element.fork()
    }

    fn join(&mut self, left: &Self::Element, right: &Self::Element) -> Self::Element {
        left.join(right)
    }

    fn relation(&self, left: &Self::Element, right: &Self::Element) -> Relation {
        left.relation(right)
    }

    fn size_bits(&self, element: &Self::Element) -> usize {
        element.size_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_and_accessors() {
        let seed = ItcStamp::seed();
        assert_eq!(seed, ItcStamp::default());
        assert!(seed.id().is_one());
        assert_eq!(seed.event_tree(), &EventTree::zero());
        assert!(!seed.is_anonymous());
        assert!(seed.peek().is_anonymous());
        assert_eq!(seed.to_string(), "(1 ; 0)");
        assert!(seed.size_bits() > 0);
        let rebuilt = ItcStamp::from_parts(IdTree::one(), EventTree::zero());
        assert_eq!(rebuilt, seed);
    }

    #[test]
    fn event_on_seed_increments_leaf() {
        let seed = ItcStamp::seed();
        let once = seed.event();
        assert_eq!(once.event_tree(), &EventTree::leaf(1));
        let twice = once.event();
        assert_eq!(twice.event_tree(), &EventTree::leaf(2));
        assert_eq!(seed.relation(&twice), Relation::Dominated);
    }

    #[test]
    #[should_panic(expected = "anonymous")]
    fn event_on_anonymous_stamp_panics() {
        let _ = ItcStamp::seed().peek().event();
    }

    #[test]
    fn fork_event_join_tracks_causality() {
        let seed = ItcStamp::seed();
        let (a, b) = seed.fork();
        assert_eq!(a.relation(&b), Relation::Equal);
        assert!(a.id().is_disjoint_with(b.id()));

        let a1 = a.event();
        assert_eq!(a1.relation(&b), Relation::Dominates);
        assert_eq!(b.relation(&a1), Relation::Dominated);

        let b1 = b.event();
        assert_eq!(a1.relation(&b1), Relation::Concurrent);

        let joined = a1.join(&b1);
        assert_eq!(joined.relation(&a1), Relation::Dominates);
        assert_eq!(joined.relation(&b1), Relation::Dominates);
        // joining the two halves recovers full ownership
        assert!(joined.id().is_one());
    }

    #[test]
    fn join_of_untouched_fork_recovers_seed() {
        let seed = ItcStamp::seed();
        let (a, b) = seed.fork();
        assert_eq!(a.join(&b), seed);
        let (aa, ab) = a.fork();
        assert_eq!(aa.join(&ab).join(&b), seed);
    }

    #[test]
    fn sync_produces_equivalent_replicas() {
        let (a, b) = ItcStamp::seed().fork();
        let a = a.event().event();
        let (a2, b2) = a.sync(&b);
        assert_eq!(a2.relation(&b2), Relation::Equal);
        assert!(a2.id().is_disjoint_with(b2.id()));
    }

    #[test]
    fn fill_simplifies_after_sync() {
        // The classic ITC example: fork, update both sides unevenly, join,
        // and check the event tree collapses back towards a leaf.
        let (a, b) = ItcStamp::seed().fork();
        let a = a.event().event();
        let b = b.event();
        let joined = a.join(&b);
        // after the join the owner of everything can fill to a single leaf
        let filled = joined.event();
        assert!(filled.event_tree().node_count() <= joined.event_tree().node_count() + 1);
        assert_eq!(filled.relation(&joined), Relation::Dominates);
    }

    #[test]
    fn deep_fork_chains_stay_consistent() {
        // Build eight replicas, update some, merge everything, and compare
        // against the expectation that the final stamp dominates them all.
        let mut replicas = vec![ItcStamp::seed()];
        for _ in 0..3 {
            let mut next = Vec::new();
            for r in replicas {
                let (x, y) = r.fork();
                next.push(x);
                next.push(y);
            }
            replicas = next;
        }
        assert_eq!(replicas.len(), 8);
        let updated: Vec<ItcStamp> = replicas
            .iter()
            .enumerate()
            .map(|(i, r)| if i % 2 == 0 { r.event() } else { r.clone() })
            .collect();
        let merged = updated.iter().skip(1).fold(updated[0].clone(), |acc, r| acc.join(r));
        assert!(merged.id().is_one());
        for r in &updated {
            assert!(r.leq(&merged), "{r} should be ≤ the total merge {merged}");
        }
    }

    #[test]
    fn mechanism_agrees_with_stamps_and_causal_histories() {
        use vstamp_core::causal::CausalMechanism;
        use vstamp_core::{Configuration, ElementId, Operation, Trace, TreeStampMechanism};
        let trace: Trace = [
            Operation::Fork(ElementId::new(0)),
            Operation::Update(ElementId::new(1)),
            Operation::Fork(ElementId::new(2)),
            Operation::Update(ElementId::new(4)),
            Operation::Update(ElementId::new(3)),
            Operation::Join(ElementId::new(6), ElementId::new(7)),
            Operation::Fork(ElementId::new(8)),
            Operation::Update(ElementId::new(9)),
        ]
        .into_iter()
        .collect();
        let mut itc = Configuration::new(ItcMechanism::new());
        let mut stamps = Configuration::new(TreeStampMechanism::reducing());
        let mut causal = Configuration::new(CausalMechanism::new());
        itc.apply_trace(&trace).unwrap();
        stamps.apply_trace(&trace).unwrap();
        causal.apply_trace(&trace).unwrap();
        for (a, b, expected) in causal.pairwise_relations() {
            assert_eq!(itc.relation(a, b).unwrap(), expected, "ITC mismatch at ({a}, {b})");
            assert_eq!(stamps.relation(a, b).unwrap(), expected);
        }
        assert_eq!(ItcMechanism::new().mechanism_name(), "interval-tree-clocks");
    }
}
