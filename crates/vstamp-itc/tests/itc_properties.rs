//! Property tests: Interval Tree Clocks induce the same frontier pre-order
//! as causal histories (and hence as version stamps) on random
//! fork/join/update traces, and the event-tree semilattice laws hold.

use proptest::prelude::*;
use vstamp_core::causal::CausalMechanism;
use vstamp_core::{Configuration, Mechanism, Operation, Trace};
use vstamp_itc::{EventTree, ItcMechanism};

type Script = Vec<(u8, u8, u8)>;

fn script(max_len: usize) -> impl Strategy<Value = Script> {
    prop::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 0..=max_len)
}

fn run_script<M: Mechanism>(mechanism: M, script: &Script) -> (Configuration<M>, Trace) {
    let mut config = Configuration::new(mechanism);
    let mut trace = Trace::new();
    for &(kind, x, y) in script {
        let ids = config.ids();
        let pick = |sel: u8| ids[sel as usize % ids.len()];
        let op = match kind % 3 {
            0 => Operation::Update(pick(x)),
            1 => Operation::Fork(pick(x)),
            _ if ids.len() >= 2 => {
                let a = pick(x);
                let b = pick(y);
                if a == b {
                    Operation::Join(a, *ids.iter().find(|&&i| i != a).expect("len >= 2"))
                } else {
                    Operation::Join(a, b)
                }
            }
            _ => Operation::Fork(pick(x)),
        };
        config.apply(op).expect("scripted operation applies");
        trace.push(op);
    }
    (config, trace)
}

/// Strategy for small normalized event trees.
fn event_tree(depth: u32) -> impl Strategy<Value = EventTree> {
    let leaf = (0u64..6).prop_map(EventTree::leaf);
    leaf.prop_recursive(depth, 16, 2, |inner| {
        ((0u64..4), inner.clone(), inner).prop_map(|(base, l, r)| EventTree::node(base, l, r))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// ITC agrees with the causal-history oracle on random traces.
    #[test]
    fn itc_agrees_with_causal_histories(script in script(35)) {
        let (causal, trace) = run_script(CausalMechanism::new(), &script);
        let mut itc = Configuration::new(ItcMechanism::new());
        itc.apply_trace(&trace).expect("trace replays");
        prop_assert_eq!(itc.ids(), causal.ids());
        for (a, b, expected) in causal.pairwise_relations() {
            prop_assert_eq!(itc.relation(a, b).expect("same ids"), expected,
                "ITC mismatch at ({}, {})", a, b);
        }
    }

    /// Identities of the live frontier are always pairwise disjoint and sum
    /// to full ownership.
    #[test]
    fn frontier_identities_partition_the_interval(script in script(30)) {
        let (itc, _trace) = run_script(ItcMechanism::new(), &script);
        let stamps: Vec<_> = itc.iter().map(|(_, s)| s.clone()).collect();
        for (i, a) in stamps.iter().enumerate() {
            for b in stamps.iter().skip(i + 1) {
                prop_assert!(a.id().is_disjoint_with(b.id()));
            }
        }
        let total = stamps.iter().fold(vstamp_itc::IdTree::zero(), |acc, s| acc.sum(s.id()));
        prop_assert!(total.is_one(), "frontier identities must cover the whole interval, got {}", total);
    }

    /// Event trees form a join semilattice under pointwise maximum.
    #[test]
    fn event_tree_semilattice_laws(a in event_tree(3), b in event_tree(3), c in event_tree(3)) {
        prop_assert_eq!(a.join(&a), a.normalized());
        prop_assert_eq!(a.join(&b), b.join(&a));
        prop_assert_eq!(a.join(&b).join(&c), a.join(&b.join(&c)));
        prop_assert!(a.leq(&a.join(&b)));
        prop_assert!(b.leq(&a.join(&b)));
        prop_assert!(a.join(&b).is_normalized());
    }

    /// `leq` coincides with join absorption on normalized trees.
    #[test]
    fn event_tree_leq_iff_absorption(a in event_tree(3), b in event_tree(3)) {
        let (a, b) = (a.normalized(), b.normalized());
        prop_assert_eq!(a.leq(&b), a.join(&b) == b);
    }

    /// min/max bounds behave under join.
    #[test]
    fn event_tree_bounds(a in event_tree(3), b in event_tree(3)) {
        let j = a.join(&b);
        prop_assert_eq!(j.max_value(), a.max_value().max(b.max_value()));
        prop_assert!(j.min_value() >= a.min_value().max(b.min_value()).min(j.min_value()));
        prop_assert!(j.min_value() >= a.min_value() && j.min_value() >= b.min_value());
    }
}
